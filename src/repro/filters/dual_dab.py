"""The Dual-DAB approach (paper Section III-A.2–III-A.5).

Each item gets *two* bounds: a primary DAB ``b`` (the push filter at the
source, slightly more stringent than refresh-optimal) and a secondary DAB
``c >= b`` (checked only at the coordinator) defining the window of values
over which the primaries remain valid.  The tradeoff constant μ — the
message-cost of one recomputation — couples refreshes and recomputations in
a single objective:

    minimise    sum_i λ_i / b_i  +  μ · R
    subject to  sum_t w_t (prod (V_i+c_i+b_i)^{p_i} - prod (V_i+c_i)^{p_i}) <= B
                b_i <= c_i                    for every item
                λ_i / c_i <= R                (recomputation-rate envelope)
                c_i <= V_i                    (window stays positive)

(For the random-walk ddm the λ/b and λ/c terms become λ²/b² and λ²/c².)
All pieces are posynomials/monomials, so the problem is a geometric program.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.exceptions import NotPositiveCoefficientError
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial, substitute
from repro.gp.program import GeometricProgram
from repro.filters.assignment import DABAssignment
from repro.filters.cost_model import CostModel
from repro.filters.optimal_refresh import _require_ppq
from repro.queries.deviation import (
    dual_dab_condition,
    primary_variable,
    secondary_variable,
)
from repro.queries.polynomial import PolynomialQuery

#: GP variable holding the recomputation rate R.
RECOMPUTE_RATE_VARIABLE = "R__rate"


def build_dual_dab_program(
    query: PolynomialQuery,
    values: Mapping[str, float],
    cost_model: CostModel,
    rate_variable: str = RECOMPUTE_RATE_VARIABLE,
    constrain_window: bool = True,
    recompute_envelope: str = "sum",
) -> GeometricProgram:
    """Construct the dual-DAB GP for one PPQ (exposed for AAO, which embeds
    per-query copies of these constraints in a joint program).

    ``recompute_envelope`` selects how the recomputation rate ``R`` bounds
    the per-item window-crossing rates:

    * ``"max"`` — the paper's formulation, ``λ_i / c_i <= R`` per item
      (exact for deterministic monotonic drift, where the first window
      crossing is the fastest item's);
    * ``"sum"`` — the union bound ``Σ_i λ_i / c_i <= R`` (each item's
      crossings can independently trigger a recomputation, the behaviour
      real fluctuating traces show).  Both are posynomial-representable;
      "sum" prices window width into the b/c budget split correctly under
      trace-driven data and is the default.
    """
    if recompute_envelope not in ("max", "sum"):
        raise ValueError(f"recompute_envelope must be 'max' or 'sum', "
                         f"got {recompute_envelope!r}")
    items = query.variables
    rate_var = Monomial.variable(rate_variable)

    objective = (
        cost_model.refresh_objective(items)
        + Monomial(max(cost_model.recompute_cost, 1e-9), {rate_variable: 1.0})
    )
    program = GeometricProgram(objective=objective)
    program.add_constraint(dual_dab_condition(query.terms, values, query.qab),
                           1.0, name="qab")
    if recompute_envelope == "sum":
        program.add_constraint(
            Posynomial([cost_model.recompute_rate_monomial(name) for name in items])
            / rate_var,
            1.0, name="recompute",
        )
    for name in items:
        b = Monomial.variable(primary_variable(name))
        c = Monomial.variable(secondary_variable(name))
        program.add_constraint(b / c, 1.0, name=f"order[{name}]")
        if recompute_envelope == "max":
            program.add_constraint(cost_model.recompute_rate_monomial(name) / rate_var,
                                   1.0, name=f"recompute[{name}]")
        if constrain_window:
            # Keep the lower window edge V - c non-negative so that the
            # implied Eq. 3 (downward drift) stays meaningful on positive data.
            program.add_constraint(c / float(values[name]), 1.0, name=f"window[{name}]")
    return program


def build_widen_program(
    query: PolynomialQuery,
    values: Mapping[str, float],
    primary: Mapping[str, float],
    cost_model: CostModel,
    constrain_window: bool = True,
) -> GeometricProgram:
    """Construct the second-pass widening GP (see :func:`widen_secondary`);
    exposed so the compiled-template path can build it once per query."""
    items = query.variables
    fixed = {primary_variable(name): float(primary[name]) for name in items}
    objective = Posynomial([
        Monomial(max(cost_model.rate_of(name), 1e-12), {secondary_variable(name): -1.0})
        for name in items
    ])
    program = GeometricProgram(objective=objective)
    condition = substitute(
        dual_dab_condition(query.terms, values, query.qab), fixed
    )
    program.add_constraint(condition, 1.0, name="qab")
    for name in items:
        c = Monomial.variable(secondary_variable(name))
        program.add_constraint(float(primary[name]) / c, 1.0, name=f"order[{name}]")
        if constrain_window:
            program.add_constraint(c / float(values[name]), 1.0, name=f"window[{name}]")
    return program


def widen_secondary(
    query: PolynomialQuery,
    values: Mapping[str, float],
    primary: Mapping[str, float],
    cost_model: CostModel,
    constrain_window: bool = True,
    initial: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Second-pass window widening: with the primary DABs fixed at ``b*``,
    choose the secondary DABs minimising the *union-bound* recomputation
    rate ``sum_i λ_i / c_i`` subject to the same QAB condition.

    The paper's formulation constrains only ``R = max_i λ_i / c_i``, which
    leaves the non-binding ``c_i`` degenerate — an interior-point solver
    (the paper's CVXOPT) lands on generous windows, an active-set solver
    parks them at their lower bound.  This pass removes the degeneracy
    deterministically, never touching refresh optimality (``b*`` is fixed)
    and never loosening the QAB guarantee.
    """
    items = query.variables
    program = build_widen_program(query, values, primary, cost_model,
                                  constrain_window=constrain_window)
    solution = program.solve(initial=initial)
    secondary = {name: solution.values[secondary_variable(name)] for name in items}
    for name in items:
        if secondary[name] < primary[name]:
            secondary[name] = float(primary[name])
    return secondary


class DualDABPlanner:
    """Primary+secondary DAB planner for PPQs (the paper's main algorithm).

    ``widen_windows`` enables the second-pass secondary-DAB widening (see
    :func:`widen_secondary`); disable it to study the raw formulation.
    """

    def __init__(self, cost_model: CostModel, constrain_window: bool = True,
                 widen_windows: bool = True, recompute_envelope: str = "sum",
                 use_compiled: bool = False):
        self.cost_model = cost_model
        self.constrain_window = constrain_window
        self.widen_windows = widen_windows
        self.recompute_envelope = recompute_envelope
        self.use_compiled = bool(use_compiled)
        self._warm_starts: Dict[str, Dict[str, float]] = {}
        self._templates: Dict[str, object] = {}

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        """Compute primary and secondary DABs at the given item values.

        The returned assignment stays valid while every item remains within
        ``reference ± secondary``; only then must this method be called
        again (the coordinator's recompute policy enforces this).
        """
        _require_ppq(query, "DualDABPlanner")
        items = query.variables

        template = None
        if self.use_compiled:
            template = self._templates.get(query.name)
            if template is None:
                from repro.filters.compiled_gp import CompiledDualDabTemplate

                template = CompiledDualDabTemplate(
                    query, values, self.cost_model,
                    constrain_window=self.constrain_window,
                    recompute_envelope=self.recompute_envelope,
                )
                self._templates[query.name] = template
            solution = template.solve(
                values, initial=self._warm_starts.get(query.name))
        else:
            program = build_dual_dab_program(
                query, values, self.cost_model, constrain_window=self.constrain_window,
                recompute_envelope=self.recompute_envelope,
            )
            solution = program.solve(initial=self._warm_starts.get(query.name))
        self._warm_starts[query.name] = dict(solution.values)

        primary = {name: solution.values[primary_variable(name)] for name in items}
        secondary = {name: solution.values[secondary_variable(name)] for name in items}
        # Numerical guard: the GP keeps b <= c only to solver tolerance.
        for name in items:
            if secondary[name] < primary[name]:
                secondary[name] = primary[name]
        if self.widen_windows:
            if template is not None:
                secondary = template.widen(
                    values, primary,
                    initial=self._warm_starts.get(query.name),
                )
            else:
                secondary = widen_secondary(
                    query, values, primary, self.cost_model,
                    constrain_window=self.constrain_window,
                    initial=self._warm_starts.get(query.name),
                )
        return DABAssignment(
            primary=primary,
            secondary=secondary,
            reference_values={name: float(values[name]) for name in items},
            recompute_rate=solution.values[RECOMPUTE_RATE_VARIABLE],
            objective=solution.objective,
        )

    # -- delta-recompute plumbing ------------------------------------------------

    def compiled_template(self, query_name: str):
        """The query's :class:`CompiledDualDabTemplate`, or ``None`` before
        its first compiled plan (or with ``use_compiled=False``)."""
        return self._templates.get(query_name)

    def warm_start(self, query_name: str) -> Optional[Dict[str, float]]:
        """The main-program optimum of the query's last solve (captured
        *before* widening) — the point a delta patch warm-starts from."""
        return self._warm_starts.get(query_name)

    def seed_warm_start(self, query_name: str,
                        values: Mapping[str, float]) -> None:
        """Adopt externally-computed solution values as the next warm start
        (a successful delta patch keeps the full-solve path in sync)."""
        self._warm_starts[query_name] = dict(values)

    def clear_warm_starts(self) -> None:
        """Drop cached solver starts (per-query); next solves run cold."""
        self._warm_starts.clear()

    def forget_query(self, name: str) -> None:
        """Drop every per-name cache for *name* (and the ``name__*``
        derivatives the split heuristics plan through).  Required when a
        query is removed and a *different* query may later reuse the
        name — e.g. live resharding re-adding a re-decomposed sub-query:
        a stale compiled template or warm start solves the old program
        shape and misses the new variables."""
        prefix = f"{name}__"
        for table in (self._warm_starts, self._templates):
            for key in [k for k in table if k == name or k.startswith(prefix)]:
                del table[key]
