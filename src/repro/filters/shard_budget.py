"""Cross-shard accuracy-budget decomposition (AAO at the shard boundary).

A cluster of coordinator shards partitions the item space, but a query
``P : B`` may reference items owned by several shards.  This module
splits such a query into per-shard *sub-queries* the same way the
paper's Half-and-Half heuristic splits ``P = P1 - P2`` into
``P1 : B/2`` and ``P2 : B/2`` (Section III-B.1): group the terms of
``P`` by a *home shard* and give each of the ``k`` home shards the
sub-polynomial of its terms under the budget ``B/k``.  For the common
two-shard span this is exactly the paper's ``B/2`` split applied at the
shard boundary instead of at the sign boundary.

Soundness is the same triangle-inequality argument as Claim 1: each
shard runs the full AAO machinery on its sub-query, so the served
partial ``v_s`` satisfies ``|v_s - P_s(x)| <= B/k``, and the aggregator
serves ``sum_s v_s`` with

    ``|sum_s v_s - P(x)| <= sum_s |v_s - P_s(x)| <= k * (B/k) = B``.

A term's home shard is the owner of its lexicographically-first
variable — deterministic, independent of process, and guaranteed to
keep a query on ONE shard whenever all its items co-hash (the
single-shard case then reuses the original query object verbatim, with
its full budget ``B``, so an N=1 cluster is bit-identical to the
single-coordinator path).

A term may still *reference* items owned by other shards (``x*y`` homed
where ``x`` lives but reading ``y``): those foreign items are
*mirrored* — the router forwards their refreshes to every shard whose
sub-queries read them, and each such shard runs its own DAB filtering
on the mirror.  The decomposition reports the mirror set per shard so
the router can build its forwarding table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.queries.polynomial import PolynomialQuery
from repro.queries.terms import QueryTerm

ShardOf = Callable[[str], int]


def term_home_shard(term: QueryTerm, shard_of: ShardOf) -> int:
    """The shard a term is evaluated on: owner of its first variable."""
    return shard_of(min(term.variables))


@dataclass(frozen=True)
class QueryDecomposition:
    """One query's split into per-shard sub-queries under ``B/k`` budgets."""

    query: PolynomialQuery
    #: home shard -> sub-query (same name as the original; qab = B/k).
    sub_queries: Dict[int, PolynomialQuery]
    #: shard -> items the sub-query reads but the shard does not own.
    mirrored: Dict[int, Tuple[str, ...]]

    @property
    def home_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self.sub_queries))

    @property
    def is_cross_shard(self) -> bool:
        return len(self.sub_queries) > 1

    def sub_qab(self, shard: int) -> float:
        return self.sub_queries[shard].qab


def decompose_query(query: PolynomialQuery, shard_of: ShardOf) -> QueryDecomposition:
    """Split *query* across its home shards with ``B/k`` sub-budgets."""
    by_home: Dict[int, List[QueryTerm]] = {}
    for term in query.terms:
        by_home.setdefault(term_home_shard(term, shard_of), []).append(term)

    spans = len(by_home)
    if spans == 1:
        # Single home shard: keep the original query object (same budget
        # B, same term tuple) so the N=1 / co-hashing cases stay
        # bit-identical to the single-coordinator path.
        home = next(iter(by_home))
        sub_queries = {home: query}
    else:
        sub_qab = query.qab / spans
        sub_queries = {
            home: query.sub_query(terms, sub_qab, name=query.name)
            for home, terms in by_home.items()
        }

    mirrored = {}
    for home, sub in sub_queries.items():
        foreign = tuple(
            item for item in sub.variables if shard_of(item) != home
        )
        if foreign:
            mirrored[home] = foreign
    return QueryDecomposition(query=query, sub_queries=sub_queries,
                              mirrored=mirrored)


@dataclass(frozen=True)
class BankDecomposition:
    """A whole query bank's shard assignment.

    ``sub_queries_for[s]`` is the bank shard ``s`` runs (original query
    names are reused — each shard has its own namespace, and the shared
    name is what lets the aggregator recombine partials per query).
    ``items_needed[s]`` is every item shard ``s`` must receive refreshes
    for — owned or mirrored; shards absent from the mapping host no
    sub-query and are never built (a coordinator core needs at least
    one query).
    """

    decompositions: Dict[str, QueryDecomposition]
    sub_queries_for: Dict[int, Tuple[PolynomialQuery, ...]]
    items_needed: Dict[int, Tuple[str, ...]]

    @property
    def active_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self.sub_queries_for))

    @property
    def cross_shard(self) -> Tuple[str, ...]:
        return tuple(sorted(
            name for name, dec in self.decompositions.items()
            if dec.is_cross_shard
        ))

    @property
    def mirrored_items(self) -> Dict[int, Tuple[str, ...]]:
        """shard -> sorted foreign items mirrored to it (union over queries)."""
        merged: Dict[int, set] = {}
        for dec in self.decompositions.values():
            for shard, items in dec.mirrored.items():
                merged.setdefault(shard, set()).update(items)
        return {shard: tuple(sorted(items)) for shard, items in sorted(merged.items())}

    def home_shards(self, name: str) -> Tuple[int, ...]:
        return self.decompositions[name].home_shards

    def sub_qab(self, name: str, shard: int) -> float:
        return self.decompositions[name].sub_qab(shard)

    def shards_of_item(self, item: str) -> Tuple[int, ...]:
        """Every shard whose bank reads *item* (owner and mirrors)."""
        return tuple(sorted(
            shard for shard, items in self.items_needed.items()
            if item in self._needed_sets[shard]
        ))

    @property
    def _needed_sets(self) -> Dict[int, frozenset]:
        cache = getattr(self, "__needed_sets", None)
        if cache is None:
            cache = {shard: frozenset(items)
                     for shard, items in self.items_needed.items()}
            object.__setattr__(self, "__needed_sets", cache)
        return cache

    def queries_reading(self, item: str) -> Tuple[str, ...]:
        """Names of every query whose variables include *item*."""
        return tuple(sorted(
            name for name, dec in self.decompositions.items()
            if item in dec.query.variables
        ))

    def replace(self, updated: Mapping[str, QueryDecomposition]
                ) -> "BankDecomposition":
        """A new bank decomposition with *updated* queries swapped in.

        The live-resharding cutover path: after an item moves, only the
        queries reading it are re-decomposed under the new map — every
        other query's decomposition object is carried over untouched
        (minimal movement at the bank level, mirroring
        :meth:`ShardMap.rebalance` at the item level).  Indices are
        rebuilt from the merged decomposition set with plain dict work,
        no solves.
        """
        unknown = sorted(set(updated) - set(self.decompositions))
        if unknown:
            raise SimulationError(
                f"cannot replace unknown queries: {unknown}")
        decompositions = dict(self.decompositions)
        decompositions.update(updated)
        per_shard: Dict[int, List[PolynomialQuery]] = {}
        needed: Dict[int, set] = {}
        for dec in decompositions.values():
            for shard, sub in dec.sub_queries.items():
                per_shard.setdefault(shard, []).append(sub)
                needed.setdefault(shard, set()).update(sub.variables)
        return BankDecomposition(
            decompositions=decompositions,
            sub_queries_for={shard: tuple(bank)
                             for shard, bank in sorted(per_shard.items())},
            items_needed={shard: tuple(sorted(items))
                          for shard, items in sorted(needed.items())},
        )


def decompose_bank(queries: Sequence[PolynomialQuery],
                   shard_of: ShardOf) -> BankDecomposition:
    """Decompose every query of a bank; queries must have unique names."""
    decompositions: Dict[str, QueryDecomposition] = {}
    per_shard: Dict[int, List[PolynomialQuery]] = {}
    needed: Dict[int, set] = {}
    for query in queries:
        if query.name in decompositions:
            raise SimulationError(
                f"duplicate query name {query.name!r}: cluster recombination "
                "is keyed on query names"
            )
        dec = decompose_query(query, shard_of)
        decompositions[query.name] = dec
        for shard, sub in dec.sub_queries.items():
            per_shard.setdefault(shard, []).append(sub)
            needed.setdefault(shard, set()).update(sub.variables)
    return BankDecomposition(
        decompositions=decompositions,
        sub_queries_for={shard: tuple(bank)
                         for shard, bank in sorted(per_shard.items())},
        items_needed={shard: tuple(sorted(items))
                      for shard, items in sorted(needed.items())},
    )


def recombine(partials: Mapping[int, float]) -> float:
    """Sum per-shard partials in sorted shard order (deterministic fp).

    A single-entry mapping returns the partial verbatim — the
    single-home-shard case must pass the shard's served value through
    bit-identically.
    """
    if not partials:
        raise SimulationError("cannot recombine an empty partial set")
    if len(partials) == 1:
        return float(next(iter(partials.values())))
    return float(sum(partials[shard] for shard in sorted(partials)))
