"""Optimal Refresh (paper Section III-A.1).

For a positive-coefficient polynomial query, choose single DABs that
minimise the estimated refresh rate subject to the necessary-and-sufficient
QAB condition (Eq. 1, generalised to any PPQ):

    minimise    sum_i λ_i / b_i            (monotonic ddm; λ²/b² for RW)
    subject to  sum_t w_t (prod (V_i + b_i)^{p_i} - prod V_i^{p_i}) <= B

This is optimal in refreshes but, because the constraint depends on the
current values ``V_i``, *every* refresh arriving at the coordinator
invalidates the plan and forces a recomputation — the behaviour the
Dual-DAB approach then improves on.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.exceptions import NotPositiveCoefficientError
from repro.gp.program import GeometricProgram
from repro.filters.assignment import DABAssignment
from repro.filters.cost_model import CostModel
from repro.queries.deviation import deviation_posynomial, primary_variable
from repro.queries.polynomial import PolynomialQuery


def _require_ppq(query: PolynomialQuery, planner: str) -> None:
    if not query.is_positive_coefficient:
        raise NotPositiveCoefficientError(
            f"{planner} handles positive-coefficient queries only; "
            f"{query.name} has negative terms — use HalfAndHalfPlanner or "
            "DifferentSumPlanner for general polynomials"
        )


def build_optimal_refresh_program(
    query: PolynomialQuery,
    values: Mapping[str, float],
    cost_model: CostModel,
) -> GeometricProgram:
    """Construct the Optimal-Refresh GP for one PPQ (exposed so the
    compiled-template path can build it once per query)."""
    program = GeometricProgram(objective=cost_model.refresh_objective(query.variables))
    condition = deviation_posynomial(query.terms, values, include_secondary=False)
    program.add_constraint(condition / query.qab, 1.0, name="qab")
    return program


class OptimalRefreshPlanner:
    """Refresh-optimal single-DAB planner for PPQs.

    With ``use_compiled`` the per-query GP structure (exponent matrices,
    constraint layout) is built once and only its log-coefficients refresh
    per recomputation — bitwise identical solves, minus the posynomial
    rebuild (see :mod:`repro.filters.compiled_gp`).
    """

    def __init__(self, cost_model: CostModel, use_compiled: bool = False):
        self.cost_model = cost_model
        self.use_compiled = bool(use_compiled)
        self._warm_starts: Dict[str, Dict[str, float]] = {}
        self._templates: Dict[str, object] = {}

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        """Compute the refresh-optimal DABs at the given item values.

        Returns a single-DAB assignment (``secondary=None``): the caller
        must recompute it whenever any input item is refreshed.
        """
        _require_ppq(query, "OptimalRefreshPlanner")
        items = query.variables

        if self.use_compiled:
            template = self._templates.get(query.name)
            if template is None:
                from repro.filters.compiled_gp import CompiledOptimalRefreshTemplate

                template = CompiledOptimalRefreshTemplate(
                    query, values, self.cost_model)
                self._templates[query.name] = template
            solution = template.solve(
                values, initial=self._warm_starts.get(query.name))
        else:
            program = build_optimal_refresh_program(query, values, self.cost_model)
            solution = program.solve(initial=self._warm_starts.get(query.name))
        self._warm_starts[query.name] = dict(solution.values)

        primary = {name: solution.values[primary_variable(name)] for name in items}
        return DABAssignment(
            primary=primary,
            secondary=None,
            reference_values={name: float(values[name]) for name in items},
            recompute_rate=self.cost_model.estimated_refresh_rate(primary),
            objective=solution.objective,
        )

    def clear_warm_starts(self) -> None:
        """Drop cached solver starts (per-query); next solves run cold."""
        self._warm_starts.clear()
