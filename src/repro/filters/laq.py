"""Closed-form optimal DABs for Linear Aggregate Queries (LAQs).

The paper treats LAQs (degree-1 queries ``sum_i w_i x_i : B``) separately
because they admit simpler solutions — DABs do not depend on current values,
so no recomputation machinery is needed.  Its technical-report companion [1]
carries the derivation; we reproduce the result, which follows from one
Lagrange/Cauchy–Schwarz step:

* monotonic ddm — minimise ``sum λ_i / b_i`` s.t. ``sum |w_i| b_i <= B``::

      b_i = B * sqrt(λ_i / |w_i|) / sum_j sqrt(λ_j |w_j|)

* random walk — minimise ``sum λ_i² / b_i²`` s.t. ``sum |w_i| b_i <= B``::

      b_i = B * (λ_i² / |w_i|)^(1/3) / sum_j |w_j| (λ_j² / |w_j|)^(1/3)

Negative weights are handled through their absolute values: for a linear
query the worst case moves each item against the sign of its weight, so only
``|w_i|`` matters.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.exceptions import FilterError, InvalidQueryError
from repro.filters.assignment import DABAssignment
from repro.filters.cost_model import CostModel
from repro.dynamics.models import DataDynamicsModel
from repro.queries.polynomial import PolynomialQuery


def assign_laq(query: PolynomialQuery, cost_model: CostModel) -> DABAssignment:
    """Optimal single-shot DABs for a linear aggregate query.

    Unlike the polynomial planners this needs no current values: the LAQ
    condition ``sum |w_i| b_i <= B`` is value-free, which is precisely why
    LAQs "admit simpler solutions" (paper footnote 2).
    """
    if not query.is_linear:
        raise InvalidQueryError(
            f"{query.name} has degree {query.degree}; assign_laq handles degree-1 "
            "queries only — use the polynomial planners for non-linear queries"
        )
    weights: Dict[str, float] = {}
    for term in query.terms:
        (name, _exp), = term.key  # degree-1 ⇒ exactly one item with power 1
        weights[name] = weights.get(name, 0.0) + term.weight
    weights = {name: abs(w) for name, w in weights.items() if w != 0.0}
    if not weights:
        raise InvalidQueryError("all weights cancelled; the query is identically zero")

    ddm = cost_model.ddm
    if ddm is DataDynamicsModel.MONOTONIC:
        shares = {n: math.sqrt(cost_model.rate_of(n) / w) for n, w in weights.items()}
    elif ddm is DataDynamicsModel.RANDOM_WALK:
        shares = {n: (cost_model.rate_of(n) ** 2 / w) ** (1.0 / 3.0)
                  for n, w in weights.items()}
    else:  # pragma: no cover - enum is exhaustive
        raise FilterError(f"unhandled ddm {ddm!r}")

    denominator = sum(weights[n] * shares[n] for n in weights)
    primary = {n: query.qab * shares[n] / denominator for n in weights}

    estimated = cost_model.estimated_refresh_rate(primary)
    return DABAssignment(
        primary=primary,
        secondary=None,
        reference_values={},
        recompute_rate=0.0,  # LAQ DABs never need recomputation
        objective=estimated,
    )


class LAQPlanner:
    """Planner-protocol adapter around :func:`assign_laq`.

    Lets linear aggregate queries flow through the same coordinator
    machinery as polynomial ones.  LAQ DABs are value-free, so the
    returned plan gets an *infinite-by-construction* validity window (the
    reference values with secondary bounds equal to the values themselves
    would still be value-free; we simply return a single-DAB plan and the
    coordinator never needs to recompute because ``window_contains`` is
    overridden by the value-free flag below).
    """

    def __init__(self, cost_model: CostModel):
        self.cost_model = cost_model

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        plan = assign_laq(query, self.cost_model)
        # Give the plan an effectively unbounded window: LAQ conditions do
        # not depend on current values, so the primaries never go stale.
        huge = {name: 1e18 for name in plan.primary}
        return DABAssignment(
            primary=dict(plan.primary),
            secondary=huge,
            reference_values={name: float(values[name]) for name in plan.primary
                              if name in values},
            recompute_rate=0.0,
            objective=plan.objective,
        )


def laq_condition_satisfied(query: PolynomialQuery, primary: Mapping[str, float],
                            tol: float = 1e-9) -> bool:
    """``sum |w_i| b_i <= B`` — the LAQ analogue of Condition 1."""
    total = 0.0
    for term in query.terms:
        (name, _exp), = term.key
        total += abs(term.weight) * float(primary[name])
    return total <= query.qab * (1.0 + tol)
