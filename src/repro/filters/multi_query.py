"""Multiple polynomial queries at one coordinator — Section IV.

Two strategies:

* **EQI (Each Query Independently)** — plan every query with the
  single-query machinery and ship, per item, the minimum primary DAB.
  Scales to hundreds of queries (the paper's Figures 5, 6, 8) because each
  GP stays small.
* **AAO (All At Once)** — one joint GP: the primary DAB of an item is
  shared across queries, the secondary DAB is per ⟨query, item⟩ and each
  query gets its own recomputation rate ``R_q``.  Globally optimal but the
  variable count grows with the number of queries, so solvers only handle
  small sets (the paper evaluates 10 queries; Figure 7).

The paper's Figure 7 additionally runs **AAO-T**: recompute the joint AAO
plan every ``T`` seconds and patch individual queries with Dual-DAB in
between; the period lives in
:class:`~repro.filters.multi_query.AAOTSchedule` and the patching is done
by the simulator's recompute policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import FilterError, NotPositiveCoefficientError
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial
from repro.gp.program import GeometricProgram
from repro.filters.assignment import DABAssignment, MultiQueryAssignment
from repro.filters.cost_model import CostModel
from repro.filters.dual_dab import DualDABPlanner
from repro.filters.heuristics import DifferentSumPlanner
from repro.queries.deviation import (
    dual_dab_condition,
    primary_variable,
    secondary_variable,
)
from repro.queries.polynomial import PolynomialQuery


def rename_posynomial(posynomial: Posynomial, mapping: Mapping[str, str]) -> Posynomial:
    """Rebuild a posynomial with variables renamed through ``mapping``
    (identity for unmapped names).  Used by AAO to give each query its own
    copy of the secondary-DAB variables."""
    renamed = []
    for term in posynomial.terms:
        exponents = {mapping.get(name, name): exp for name, exp in term.exponents.items()}
        renamed.append(Monomial(term.coefficient, exponents))
    return Posynomial(renamed)


class EQIPlanner:
    """Each Query Independently.

    ``planner`` defaults to Different-Sum-over-Dual-DAB, which transparently
    handles both PPQs and general polynomials.
    """

    def __init__(self, cost_model: CostModel, planner: Optional[object] = None):
        self.cost_model = cost_model
        self.planner = planner if planner is not None else DifferentSumPlanner(cost_model)

    def plan_query(self, query: PolynomialQuery,
                   values: Mapping[str, float]) -> DABAssignment:
        return self.planner.plan(query, values)

    def plan_all(self, queries: Sequence[PolynomialQuery],
                 values: Mapping[str, float]) -> MultiQueryAssignment:
        if not queries:
            raise FilterError("EQI needs at least one query")
        assignments = {q.name: self.planner.plan(q, values) for q in queries}
        return MultiQueryAssignment.from_assignments(assignments)

    def replan(self, multi: MultiQueryAssignment, query: PolynomialQuery,
               values: Mapping[str, float]) -> MultiQueryAssignment:
        """Replace one query's plan and re-merge the coordinator map —
        the coordinator does exactly this when a secondary window breaks."""
        per_query = dict(multi.per_query)
        per_query[query.name] = self.planner.plan(query, values)
        return MultiQueryAssignment.from_assignments(per_query)


def _aao_secondary(query_index: int, item: str) -> str:
    return f"c__q{query_index}__{item}"


def _aao_rate(query_index: int) -> str:
    return f"R__q{query_index}"


class AAOPlanner:
    """All At Once: the joint GP over every query.

    The objective is the total message rate:
    ``sum_i λ_i/b_i + μ · sum_q R_q`` — refreshes counted once against the
    shared primaries, recomputations per query.
    """

    def __init__(self, cost_model: CostModel, constrain_window: bool = True,
                 widen_windows: bool = True):
        self.cost_model = cost_model
        self.constrain_window = constrain_window
        self.widen_windows = widen_windows
        self._warm_start: Optional[Dict[str, float]] = None

    def build_program(self, queries: Sequence[PolynomialQuery],
                      values: Mapping[str, float]) -> GeometricProgram:
        if not queries:
            raise FilterError("AAO needs at least one query")
        for query in queries:
            if not query.is_positive_coefficient:
                raise NotPositiveCoefficientError(
                    f"AAO is formulated for PPQs; {query.name} has negative terms. "
                    "Mirror it first (positive_mirror) or use EQI with a heuristic."
                )
        all_items = sorted({name for q in queries for name in q.variables})

        objective: Posynomial = self.cost_model.refresh_objective(all_items)
        mu = max(self.cost_model.recompute_cost, 1e-9)
        for index in range(len(queries)):
            objective = objective + Monomial(mu, {_aao_rate(index): 1.0})

        program = GeometricProgram(objective=objective)
        for index, query in enumerate(queries):
            mapping = {
                secondary_variable(name): _aao_secondary(index, name)
                for name in query.variables
            }
            condition = rename_posynomial(
                dual_dab_condition(query.terms, values, query.qab), mapping
            )
            program.add_constraint(condition, 1.0, name=f"qab[{query.name}]")
            rate_var = Monomial.variable(_aao_rate(index))
            for name in query.variables:
                b = Monomial.variable(primary_variable(name))
                c = Monomial.variable(_aao_secondary(index, name))
                program.add_constraint(b / c, 1.0, name=f"order[{query.name}:{name}]")
                recompute = rename_posynomial(
                    Posynomial([self.cost_model.recompute_rate_monomial(name)]), mapping
                ).as_monomial()
                program.add_constraint(recompute / rate_var, 1.0,
                                       name=f"recompute[{query.name}:{name}]")
                if self.constrain_window:
                    program.add_constraint(c / float(values[name]), 1.0,
                                           name=f"window[{query.name}:{name}]")
        return program

    def plan_all(self, queries: Sequence[PolynomialQuery],
                 values: Mapping[str, float]) -> MultiQueryAssignment:
        program = self.build_program(queries, values)
        solution = program.solve(initial=self._warm_start)
        self._warm_start = dict(solution.values)

        per_query: Dict[str, DABAssignment] = {}
        for index, query in enumerate(queries):
            items = query.variables
            primary = {name: solution.values[primary_variable(name)] for name in items}
            secondary = {name: solution.values[_aao_secondary(index, name)] for name in items}
            for name in items:
                if secondary[name] < primary[name]:
                    secondary[name] = primary[name]
            if self.widen_windows:
                from repro.filters.dual_dab import widen_secondary

                secondary = widen_secondary(
                    query, values, primary, self.cost_model,
                    constrain_window=self.constrain_window,
                )
            per_query[query.name] = DABAssignment(
                primary=primary,
                secondary=secondary,
                reference_values={name: float(values[name]) for name in items},
                recompute_rate=solution.values[_aao_rate(index)],
                objective=solution.objective,
            )
        return MultiQueryAssignment.from_assignments(per_query)


@dataclass(frozen=True)
class AAOTSchedule:
    """Configuration of the Figure-7 hybrid: a full AAO recomputation every
    ``period`` ticks; secondary-window violations in between are patched
    per query with Dual-DAB and merged by min-primary."""

    period: int

    def __post_init__(self) -> None:
        if self.period < 1:
            raise FilterError(f"AAO-T period must be >= 1 tick, got {self.period!r}")
