"""Sound value-quantised caching of planner solves.

The simulator recomputes DABs thousands of times at values that drift only
slightly between recomputations.  :class:`QuantisingCachePlanner` wraps any
planner and keys its cache on *upward-quantised* item values: each value is
rounded up to the next point of a geometric grid ``(1+grid)^k`` and the plan
is computed there.

Soundness: the worst-case deviation of a PPQ is monotonically increasing in
every base value (all expansion coefficients are positive), so an
assignment feasible at the inflated values ``v_q >= v`` is feasible at the
true values.  On a cache hit the assignment is *re-centred* on the true
values — the dual-DAB window condition at the re-centred point,
``v + c <= v_q + c``, is again dominated by the cached solve.

The cache is a simulator optimisation, not an algorithm change: the
measured *number* of recomputations is untouched (the coordinator still
recomputes whenever the paper's algorithms would); only repeated GP solves
at near-identical inputs are shared.  ``stats`` exposes hit/miss counts so
experiments can report true solver workloads.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import FilterError
from repro.filters.assignment import DABAssignment
from repro.queries.polynomial import PolynomialQuery


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def solves(self) -> int:
        return self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QuantisingCachePlanner:
    """Wrap a planner with an upward-quantising LRU solve cache."""

    def __init__(self, planner: object, grid: float = 0.02, max_entries: int = 50000,
                 bank_index_mode: Optional[str] = None):
        if not (0.0 < grid < 1.0):
            raise FilterError(f"grid must be in (0, 1), got {grid!r}")
        if max_entries < 1:
            raise FilterError(f"max_entries must be >= 1, got {max_entries!r}")
        self.planner = planner
        self.grid = grid
        self.max_entries = max_entries
        self.bank_index_mode = bank_index_mode
        self.stats = CacheStats()
        self._cache: "OrderedDict[Tuple, DABAssignment]" = OrderedDict()
        self._log_step = math.log1p(grid)

    @property
    def _mode_key(self) -> str:
        """The wrapped stack's recompute mode, part of every cache key.

        Keying on values alone let a planner whose mode changed between
        runs (full <-> delta) serve entries computed under the other mode —
        sound plans, but the wrong solve path's plans, which silently
        corrupts mode-comparison experiments and the patch/fallback
        counters.  Stacks without a delta layer key as "full"."""
        node = self.planner
        seen = set()
        while node is not None and id(node) not in seen:
            mode = getattr(node, "recompute_mode", None)
            if isinstance(mode, str):
                return mode
            seen.add(id(node))
            node = (getattr(node, "planner", None)
                    or getattr(node, "base", None)
                    or getattr(node, "inner", None))
        return "full"

    @property
    def _bank_key(self) -> str:
        """The bank-index mode, part of every cache key (PR 8).

        Same rationale as :attr:`_mode_key`: a flat- and a shared-index
        run must never serve each other's entries — the shared stack
        warm-starts solves from per-template anchors, so its plans can
        differ in the last ulp from the flat stack's, and kill -9 replay
        determinism requires each mode to replay only its own solves.
        The mode is set explicitly by the harness/server builders; as a
        fallback the planner stack is walked for a ``bank_index_mode``
        attribute.  Stacks without one key as "flat"."""
        if isinstance(self.bank_index_mode, str):
            return self.bank_index_mode
        node = self.planner
        seen = set()
        while node is not None and id(node) not in seen:
            mode = getattr(node, "bank_index_mode", None)
            if isinstance(mode, str):
                return mode
            seen.add(id(node))
            node = (getattr(node, "planner", None)
                    or getattr(node, "base", None)
                    or getattr(node, "inner", None))
        return "flat"

    def _quantise_up(self, value: float) -> float:
        if value <= 0.0:
            raise FilterError(f"item values must be positive, got {value!r}")
        k = math.ceil(math.log(value) / self._log_step - 1e-12)
        return math.exp(k * self._log_step)

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        quantised = {name: self._quantise_up(float(values[name]))
                     for name in query.variables}
        key = (query.name, self._mode_key, self._bank_key,
               tuple(sorted(quantised.items())))
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            cached = self.planner.plan(query, quantised)
            self._cache[key] = cached
            if len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
        # Re-centre the (feasible-at-inflated-values) plan on the true values.
        return replace(
            cached,
            primary=dict(cached.primary),
            secondary=None if cached.secondary is None else dict(cached.secondary),
            reference_values={name: float(values[name]) for name in query.variables},
        )

    def clear(self) -> None:
        self._cache.clear()
        self.stats = CacheStats()

    def forget_query(self, name: str) -> None:
        """Evict every cached plan for *name* (and its ``name__*`` split
        derivatives) and forget it downstream.  Needed when the name may
        be re-registered with a different polynomial or budget: the
        cache key carries the quantised values but not the qab, so a
        same-variables/different-budget re-registration would otherwise
        replay a plan solved for the old budget."""
        prefix = f"{name}__"
        for key in [k for k in self._cache
                    if k[0] == name or str(k[0]).startswith(prefix)]:
            del self._cache[key]
        forget = getattr(self.planner, "forget_query", None)
        if forget is not None:
            forget(name)

    def clear_warm_starts(self) -> None:
        """Drop the inner planner's solver warm starts (fault resync).

        Cached *plans* stay: they are value-keyed and remain sound; only
        the solver's start points can go stale across a topology change.
        """
        clear = getattr(self.planner, "clear_warm_starts", None)
        if clear is not None:
            clear()
