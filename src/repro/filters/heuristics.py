"""Heuristics for general (mixed-sign) polynomial queries — Section III-B.

No known optimisation technique yields the optimum once a polynomial has
negative coefficients (the constraints stop being posynomials).  The paper's
key observation: any polynomial splits as ``P = P1 - P2`` with both halves
positive-coefficient, enabling two heuristics:

* **Half and Half** — solve ``P1 : B/2`` and ``P2 : B/2`` separately and
  take, per item, the minimum DAB.  Correct because a change of ``P`` by
  more than ``B`` forces one half to change by more than ``B/2``.
* **Different Sum** — solve the single PPQ ``P1 + P2 : B``.  Correct by
  Claim 1 (the mixed-sign QAB condition is term-wise dominated by the
  all-positive one) and provably near-optimal when the halves are
  independent and the optimal DABs are small relative to the data
  (Claim 2).

Both delegate the PPQ solves to a base planner (Dual-DAB by default, or
Optimal Refresh for refresh-only studies).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import FilterError, InvalidQueryError
from repro.filters.assignment import DABAssignment
from repro.filters.cost_model import CostModel
from repro.filters.dual_dab import DualDABPlanner
from repro.queries.polynomial import PolynomialQuery
from repro.queries.terms import QueryTerm


def _merge_half_plans(a1: DABAssignment, a2: DABAssignment) -> DABAssignment:
    """Per item the minimum of both halves' bounds.

    For primary DABs this is the paper's rule ("the DAB for coordinator C
    is the minimum amongst the primary DABs calculated for P1 and P2");
    secondaries merge the same way so the combined validity window is the
    intersection of both windows.
    """
    primary: Dict[str, float] = dict(a1.primary)
    for name, bound in a2.primary.items():
        primary[name] = min(primary.get(name, bound), bound)

    secondary: Optional[Dict[str, float]] = None
    if a1.secondary is not None and a2.secondary is not None:
        secondary = dict(a1.secondary)
        for name, bound in a2.secondary.items():
            secondary[name] = min(secondary.get(name, bound), bound)
        # An item may appear in only one half with c < other half's b after
        # the min; re-impose dominance against the merged primary.
        for name in primary:
            if name in secondary and secondary[name] < primary[name]:
                secondary[name] = primary[name]
    references = dict(a1.reference_values)
    references.update(a2.reference_values)
    return DABAssignment(
        primary=primary,
        secondary=secondary,
        reference_values=references,
        # Either half's window breaking invalidates the merged plan; the
        # union-bound rate is the sum.
        recompute_rate=a1.recompute_rate + a2.recompute_rate,
        objective=a1.objective + a2.objective,
    )


class HalfAndHalfPlanner:
    """Heuristic 1: solve ``P1 : r·B`` and ``P2 : (1-r)·B`` independently.

    ``split_ratio`` is the fraction of the QAB given to the positive half;
    the paper fixes it at 0.5 ("dividing the bound equally ... may not be
    optimal") and our ablation bench sweeps it.
    """

    def __init__(self, cost_model: CostModel, base_planner: Optional[object] = None,
                 split_ratio: float = 0.5):
        if not (0.0 < split_ratio < 1.0):
            raise FilterError(f"split ratio must be in (0, 1), got {split_ratio!r}")
        self.cost_model = cost_model
        self.base = base_planner if base_planner is not None else DualDABPlanner(cost_model)
        self.split_ratio = split_ratio

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        p1, p2 = query.split()
        if not p2:
            return self.base.plan(query, values)
        if not p1:
            # Entirely negative query: -P2 moves exactly as much as P2.
            mirror = PolynomialQuery(p2, query.qab, f"{query.name}__neg")
            return self.base.plan(mirror, values)
        q1 = PolynomialQuery(p1, query.qab * self.split_ratio, f"{query.name}__p1")
        q2 = PolynomialQuery(p2, query.qab * (1.0 - self.split_ratio), f"{query.name}__p2")
        a1 = self.base.plan(q1, values)
        a2 = self.base.plan(q2, values)
        return _merge_half_plans(a1, a2)

    def clear_warm_starts(self) -> None:
        """Drop the base planner's cached solver starts (fault resync)."""
        clear = getattr(self.base, "clear_warm_starts", None)
        if clear is not None:
            clear()

    def forget_query(self, name: str) -> None:
        """Forget *name* (and the ``__p1``/``__p2``/``__neg`` splits it
        plans through) in the base planner's per-name caches."""
        forget = getattr(self.base, "forget_query", None)
        if forget is not None:
            forget(name)


class DifferentSumPlanner:
    """Heuristic 2: solve the positive mirror ``P1 + P2 : B`` as one PPQ."""

    def __init__(self, cost_model: CostModel, base_planner: Optional[object] = None):
        self.cost_model = cost_model
        self.base = base_planner if base_planner is not None else DualDABPlanner(cost_model)

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        if query.is_positive_coefficient:
            return self.base.plan(query, values)
        mirror = query.positive_mirror()
        return self.base.plan(mirror, values)

    def clear_warm_starts(self) -> None:
        """Drop the base planner's cached solver starts (fault resync)."""
        clear = getattr(self.base, "clear_warm_starts", None)
        if clear is not None:
            clear()

    def forget_query(self, name: str) -> None:
        forget = getattr(self.base, "forget_query", None)
        if forget is not None:
            forget(name)


def dispatch_planner(cost_model: CostModel, *, dual: bool = True,
                     heuristic: str = "different_sum") -> object:
    """Build the planner stack the experiments use: Dual-DAB (or Optimal
    Refresh with ``dual=False``) for PPQs, wrapped by the chosen general-PQ
    heuristic."""
    from repro.filters.optimal_refresh import OptimalRefreshPlanner

    base = DualDABPlanner(cost_model) if dual else OptimalRefreshPlanner(cost_model)
    if heuristic == "different_sum":
        return DifferentSumPlanner(cost_model, base)
    if heuristic == "half_and_half":
        return HalfAndHalfPlanner(cost_model, base)
    raise FilterError(f"unknown heuristic {heuristic!r}; "
                      "expected 'different_sum' or 'half_and_half'")
