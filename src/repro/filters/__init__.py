"""DAB assignment — the paper's core contribution.

Given polynomial queries with QABs and current item values, the planners in
this subpackage compute data accuracy bounds (filters) for the sources:

* :class:`~repro.filters.optimal_refresh.OptimalRefreshPlanner` —
  Section III-A.1: refresh-optimal single DABs (recomputed on every refresh),
* :class:`~repro.filters.dual_dab.DualDABPlanner` — Section III-A.2/4: the
  novel primary+secondary DAB formulation trading a few extra refreshes for
  far fewer recomputations,
* :class:`~repro.filters.heuristics.HalfAndHalfPlanner` /
  :class:`~repro.filters.heuristics.DifferentSumPlanner` — Section III-B:
  general (mixed-sign) polynomial queries,
* :class:`~repro.filters.multi_query.EQIPlanner` /
  :class:`~repro.filters.multi_query.AAOPlanner` — Section IV: multiple
  queries, independently or all-at-once,
* :mod:`~repro.filters.baselines` — the uniform-allocation and
  Sharfman-style per-item baselines the paper compares against,
* :mod:`~repro.filters.laq` — closed-form optimal DABs for linear aggregate
  queries (the technical-report companion's result).
"""

from repro.filters.assignment import DABAssignment, MultiQueryAssignment, merge_primary
from repro.filters.cost_model import CostModel
from repro.filters.optimal_refresh import OptimalRefreshPlanner
from repro.filters.dual_dab import DualDABPlanner
from repro.filters.heuristics import DifferentSumPlanner, HalfAndHalfPlanner
from repro.filters.multi_query import AAOPlanner, EQIPlanner
from repro.filters.baselines import SharfmanStyleBaseline, UniformAllocationBaseline
from repro.filters.laq import assign_laq
from repro.filters.caching import QuantisingCachePlanner
from repro.filters.threshold import ThresholdMonitor, ThresholdQuery
from repro.filters.signomial import SignomialPlanner

__all__ = [
    "DABAssignment",
    "MultiQueryAssignment",
    "merge_primary",
    "CostModel",
    "OptimalRefreshPlanner",
    "DualDABPlanner",
    "HalfAndHalfPlanner",
    "DifferentSumPlanner",
    "EQIPlanner",
    "AAOPlanner",
    "SharfmanStyleBaseline",
    "UniformAllocationBaseline",
    "assign_laq",
    "QuantisingCachePlanner",
    "ThresholdMonitor",
    "ThresholdQuery",
    "SignomialPlanner",
]
