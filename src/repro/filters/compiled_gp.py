"""Compiled-GP structure reuse for the DAB planners.

Every recomputation used to rebuild the planner's whole geometric program
from posynomials — re-running the worst-case deviation expansion, the
like-term combining and ``compile()`` — even though only the *numbers*
change between recomputes: the exponent matrices, variable order,
constraint names and solver-bundle classification of a query's GP are all
value-independent.  The templates here build the scalar program exactly
once (on the first plan), keep its :class:`~repro.gp.program.CompiledProgram`
arrays, and thereafter refresh only the log-coefficient vectors in place
before calling :func:`repro.gp.solver.solve_compiled`.

Bit-exactness contract
----------------------
A refreshed template must hand the solver *bitwise identical* arrays to
what ``build_*_program(...).compile()`` would produce at the same values
and rates — identical inputs plus the solver's own per-call determinism
give identical solutions, which is what keeps the vectorized simulation
metric-identical to the scalar reference.  Each template verifies this at
construction: it refreshes against the very values it compiled from and
raises :class:`~repro.exceptions.FilterError` on any mismatch, so drift
between the scalar builders and the refresh recipes fails loudly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import FilterError, InfeasibleProblemError
from repro.dynamics.models import refresh_rate_monomial
from repro.filters.cost_model import CostModel
from repro.filters.dual_dab import (
    RECOMPUTE_RATE_VARIABLE,
    build_dual_dab_program,
    build_widen_program,
)
from repro.gp.program import CompiledProgram
from repro.gp.solver import GPSolution
from repro.queries.compiled import CompiledDeviation
from repro.queries.deviation import (
    item_of_variable,
    primary_variable,
    secondary_variable,
)
from repro.queries.polynomial import PolynomialQuery

_SECONDARY_PREFIX = "c__"


def _single_variable_items(function, variables, rate_variable: str) -> List[Optional[str]]:
    """Per row of a compiled function, the item whose ``b``/``c`` variable
    the row prices — ``None`` for the μ·R row (recognised by the rate
    variable)."""
    rows: List[Optional[str]] = []
    for i in range(function.A.shape[0]):
        columns = np.nonzero(function.A[i])[0]
        names = [variables[j] for j in columns if variables[j] != rate_variable]
        if not names:
            rows.append(None)
        else:
            rows.append(item_of_variable(names[0]))
    return rows


def _self_check(compiled: CompiledProgram, refresh, label: str) -> None:
    """Refreshing at the compile-time values must be a bitwise no-op."""
    originals = [compiled.objective.log_c.copy()] + [
        f.log_c.copy() for f in compiled.constraints
    ]
    refresh()
    refreshed = [compiled.objective.log_c] + [f.log_c for f in compiled.constraints]
    for original, current in zip(originals, refreshed):
        if not np.array_equal(original, current):
            raise FilterError(
                f"{label}: compiled template drifted from the scalar program "
                "(refresh recipe does not reproduce compile())"
            )


class CompiledDualDabTemplate:
    """Reusable compiled structure of one query's dual-DAB GP."""

    def __init__(
        self,
        query: PolynomialQuery,
        values: Mapping[str, float],
        cost_model: CostModel,
        constrain_window: bool = True,
        recompute_envelope: str = "sum",
    ):
        self.query = query
        self.cost_model = cost_model
        self.constrain_window = constrain_window
        self.recompute_envelope = recompute_envelope
        program = build_dual_dab_program(
            query, values, cost_model,
            constrain_window=constrain_window,
            recompute_envelope=recompute_envelope,
        )
        self.compiled = program.compile()
        self.deviation = CompiledDeviation(query.terms, include_secondary=True)
        variables = self.compiled.variables
        self._objective_rows = _single_variable_items(
            self.compiled.objective, variables, RECOMPUTE_RATE_VARIABLE)
        self._constraint_rows: Dict[str, List[Optional[str]]] = {}
        for name, function in zip(self.compiled.constraint_names,
                                  self.compiled.constraints):
            if name == "recompute":
                self._constraint_rows[name] = _single_variable_items(
                    function, variables, RECOMPUTE_RATE_VARIABLE)
        self._widen: Optional[CompiledWidenTemplate] = None
        #: Item values of the last refresh — the per-item delta structure
        #: the incremental recompute path diffs against to find which
        #: log-variables a window breach actually touched.
        self.last_values: Dict[str, float] = {}
        _self_check(self.compiled, lambda: self.refresh(values),
                    f"dual-DAB template for {query.name!r}")

    def changed_items(self, values: Mapping[str, float]) -> List[str]:
        """Items whose value moved since the last :meth:`refresh` — the
        variables a delta patch must actually re-solve around.  Every item
        counts as changed before the first refresh."""
        last = self.last_values
        return [name for name in self.query.variables
                if last.get(name) != float(values[name])]

    def refresh(self, values: Mapping[str, float]) -> None:
        """Rewrite every value/rate-dependent log-coefficient in place."""
        self.last_values = {name: float(values[name])
                            for name in self.query.variables}
        cost_model = self.cost_model
        objective_log = self.compiled.objective.log_c
        for i, item in enumerate(self._objective_rows):
            if item is None:
                objective_log[i] = math.log(max(cost_model.recompute_cost, 1e-9))
            else:
                objective_log[i] = math.log(refresh_rate_monomial(
                    cost_model.ddm, cost_model.rate_of(item),
                    primary_variable(item)).coefficient)
        for name, function in zip(self.compiled.constraint_names,
                                  self.compiled.constraints):
            if name == "qab":
                function.log_c[:] = self.deviation.log_coefficients(
                    values, qab=self.query.qab)
            elif name == "recompute":
                for i, item in enumerate(self._constraint_rows[name]):
                    function.log_c[i] = math.log(
                        cost_model.recompute_rate_monomial(item).coefficient)
            elif name.startswith("recompute["):
                item = name[len("recompute["):-1]
                function.log_c[0] = math.log(
                    cost_model.recompute_rate_monomial(item).coefficient)
            elif name.startswith("window["):
                item = name[len("window["):-1]
                function.log_c[0] = math.log(1.0 / float(values[item]))
            # order[...] constraints are fully static (log 1.0 == 0.0).

    def solve(self, values: Mapping[str, float],
              initial: Optional[Mapping[str, float]] = None) -> GPSolution:
        self.refresh(values)
        return self.compiled.solve(initial=initial)

    def widen_template(self, values: Mapping[str, float],
                       primary: Mapping[str, float]) -> "CompiledWidenTemplate":
        """The (lazily-built) widening template — exposed so the delta
        recompute path can Newton-patch the widening program directly."""
        if self._widen is None:
            self._widen = CompiledWidenTemplate(
                self.query, values, primary, self.cost_model, self.deviation,
                constrain_window=self.constrain_window,
            )
        return self._widen

    def widen(self, values: Mapping[str, float], primary: Mapping[str, float],
              initial: Optional[Mapping[str, float]] = None) -> Dict[str, float]:
        """Compiled equivalent of :func:`repro.filters.dual_dab.widen_secondary`."""
        solution = self.widen_template(values, primary).solve(
            values, primary, initial=initial)
        items = self.query.variables
        secondary = {name: solution.values[secondary_variable(name)]
                     for name in items}
        for name in items:
            if secondary[name] < primary[name]:
                secondary[name] = float(primary[name])
        return secondary


class CompiledWidenTemplate:
    """Reusable compiled structure of the secondary-widening GP.

    The widening pass substitutes the (per-solve) primary DABs into the
    deviation condition; the *residual* row structure is value-independent,
    so only coefficient folds re-run per solve.
    """

    def __init__(
        self,
        query: PolynomialQuery,
        values: Mapping[str, float],
        primary: Mapping[str, float],
        cost_model: CostModel,
        deviation: CompiledDeviation,
        constrain_window: bool = True,
    ):
        self.query = query
        self.cost_model = cost_model
        self.deviation = deviation
        items = query.variables
        self._fixed_names = tuple(primary_variable(name) for name in items)
        self.substituted = deviation.substituted(self._fixed_names)
        program = build_widen_program(query, values, primary, cost_model,
                                      constrain_window=constrain_window)
        self.compiled = program.compile()
        self._objective_rows = _single_variable_items(
            self.compiled.objective, self.compiled.variables,
            RECOMPUTE_RATE_VARIABLE)
        _self_check(self.compiled, lambda: self.refresh(values, primary),
                    f"widen template for {query.name!r}")

    def _qab_coefficients(self, values: Mapping[str, float],
                          primary: Mapping[str, float]) -> List[float]:
        fixed = {primary_variable(name): float(primary[name])
                 for name in self.query.variables}
        parent = self.deviation.coefficients(values, qab=self.query.qab)
        return self.substituted.coefficients(parent, fixed)

    def refresh(self, values: Mapping[str, float],
                primary: Mapping[str, float]) -> None:
        cost_model = self.cost_model
        objective_log = self.compiled.objective.log_c
        for i, item in enumerate(self._objective_rows):
            objective_log[i] = math.log(max(cost_model.rate_of(item), 1e-12))
        coefficients = self._qab_coefficients(values, primary)
        if self.substituted.is_constant:
            # compile() drops a fully-substituted (constant) QAB constraint —
            # unless it is violated, which it reports as infeasibility.
            constant = coefficients[0]
            if constant > 1.0 + 1e-12:
                raise InfeasibleProblemError(
                    f"constraint qab is constant and violated: "
                    f"{constant:.6g} <= 1"
                )
        for name, function in zip(self.compiled.constraint_names,
                                  self.compiled.constraints):
            if name == "qab":
                function.log_c[:] = [math.log(c) for c in coefficients]
            elif name.startswith("order["):
                item = name[len("order["):-1]
                function.log_c[0] = math.log(float(primary[item]))
            elif name.startswith("window["):
                item = name[len("window["):-1]
                function.log_c[0] = math.log(1.0 / float(values[item]))

    def solve(self, values: Mapping[str, float], primary: Mapping[str, float],
              initial: Optional[Mapping[str, float]] = None) -> GPSolution:
        self.refresh(values, primary)
        return self.compiled.solve(initial=initial)


class CompiledOptimalRefreshTemplate:
    """Reusable compiled structure of one query's Optimal-Refresh GP."""

    def __init__(self, query: PolynomialQuery, values: Mapping[str, float],
                 cost_model: CostModel):
        from repro.filters.optimal_refresh import build_optimal_refresh_program

        self.query = query
        self.cost_model = cost_model
        program = build_optimal_refresh_program(query, values, cost_model)
        self.compiled = program.compile()
        self.deviation = CompiledDeviation(query.terms, include_secondary=False)
        self._objective_rows = _single_variable_items(
            self.compiled.objective, self.compiled.variables,
            RECOMPUTE_RATE_VARIABLE)
        _self_check(self.compiled, lambda: self.refresh(values),
                    f"optimal-refresh template for {query.name!r}")

    def refresh(self, values: Mapping[str, float]) -> None:
        cost_model = self.cost_model
        objective_log = self.compiled.objective.log_c
        for i, item in enumerate(self._objective_rows):
            objective_log[i] = math.log(refresh_rate_monomial(
                cost_model.ddm, cost_model.rate_of(item),
                primary_variable(item)).coefficient)
        for name, function in zip(self.compiled.constraint_names,
                                  self.compiled.constraints):
            if name == "qab":
                function.log_c[:] = self.deviation.log_coefficients(
                    values, qab=self.query.qab)

    def solve(self, values: Mapping[str, float],
              initial: Optional[Mapping[str, float]] = None) -> GPSolution:
        self.refresh(values)
        return self.compiled.solve(initial=initial)
