"""The cost model shared by all planners.

Bundles the three inputs every formulation needs:

* the data dynamics model (monotonic / random walk),
* per-item rate-of-change estimates λ,
* the recomputation cost μ (the paper's ``W``/``mu``) — how many messages
  one DAB recomputation is worth (Section III-A.3 works an example
  arriving at μ = 10 for a 5-source dissemination network).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.exceptions import FilterError
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial
from repro.dynamics.models import DataDynamicsModel, refresh_rate, refresh_rate_monomial
from repro.queries.deviation import primary_variable, secondary_variable

#: λ for items the estimator knows nothing about.
DEFAULT_RATE = 1.0


@dataclass
class CostModel:
    """Inputs to the GP objectives.

    Parameters
    ----------
    ddm:
        Data dynamics model, a :class:`DataDynamicsModel` or its string value.
    rates:
        ``item -> λ``.  Missing items fall back to ``default_rate`` (the
        λ = 1 configuration of Figure 6 is expressed by passing an empty
        map and ``default_rate=1``).
    recompute_cost:
        μ >= 0 — one recomputation costs this many messages.
    default_rate:
        λ used for unknown items.
    """

    ddm: Union[DataDynamicsModel, str] = DataDynamicsModel.MONOTONIC
    rates: Dict[str, float] = field(default_factory=dict)
    recompute_cost: float = 1.0
    default_rate: float = DEFAULT_RATE

    def __post_init__(self) -> None:
        self.ddm = DataDynamicsModel.from_string(self.ddm)
        if self.recompute_cost < 0.0:
            raise FilterError(f"recomputation cost must be >= 0, got {self.recompute_cost!r}")
        if self.default_rate <= 0.0:
            raise FilterError(f"default rate must be positive, got {self.default_rate!r}")
        cleaned = {}
        for name, value in self.rates.items():
            rate = float(value)
            if rate < 0.0:
                raise FilterError(f"rate for {name!r} must be >= 0, got {value!r}")
            cleaned[name] = rate
        self.rates = cleaned

    # -- lookups -----------------------------------------------------------------

    def rate_of(self, item: str) -> float:
        """λ for ``item`` (the default for unknown items, floored > 0)."""
        rate = self.rates.get(item, self.default_rate)
        # Zero-rate items would make the GP objective ignore their DABs and
        # drive bounds to infinity; floor keeps them harmless but present.
        return max(rate, 1e-9)

    # -- GP building blocks --------------------------------------------------------

    def refresh_objective(self, items: Sequence[str]) -> Posynomial:
        """``sum_i λ_i / b_i`` (monotonic) or ``sum_i λ_i² / b_i²`` (random
        walk) over the given items — the refresh part of every objective."""
        if not items:
            raise FilterError("refresh objective needs at least one item")
        return Posynomial([
            refresh_rate_monomial(self.ddm, self.rate_of(name), primary_variable(name))
            for name in items
        ])

    def recompute_rate_monomial(self, item: str) -> Monomial:
        """The per-item contribution to the recomputation rate ``R``:
        ``λ_i / c_i`` (monotonic) or ``λ_i² / c_i²`` (random walk);
        the GP constrains each to be ``<= R``."""
        return refresh_rate_monomial(self.ddm, self.rate_of(item), secondary_variable(item))

    # -- numeric estimates -----------------------------------------------------------

    def estimated_refresh_rate(self, primary: Mapping[str, float]) -> float:
        """Model-predicted refreshes per unit time for a primary-DAB map."""
        return sum(
            refresh_rate(self.ddm, self.rate_of(name), bound)
            for name, bound in primary.items()
        )

    def estimated_recompute_rate(self, secondary: Mapping[str, float]) -> float:
        """Model-predicted recomputations per unit time (max over items)."""
        if not secondary:
            return 0.0
        return max(
            refresh_rate(self.ddm, self.rate_of(name), bound)
            for name, bound in secondary.items()
        )

    def total_cost(self, refreshes: float, recomputations: float) -> float:
        """The paper's total-cost metric: refreshes + μ · recomputations."""
        return refreshes + self.recompute_cost * recomputations

    def with_recompute_cost(self, recompute_cost: float) -> "CostModel":
        """A copy of this model with a different μ (rates shared by value)."""
        return CostModel(
            ddm=self.ddm,
            rates=dict(self.rates),
            recompute_cost=recompute_cost,
            default_rate=self.default_rate,
        )
