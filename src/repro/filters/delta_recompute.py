"""Delta-driven incremental recompute (the DBToaster idea for GP plans).

Most secondary-DAB window breaches barely move a query's optimum: one or
two items drifted past their window edge, the compiled-GP structure is
unchanged, and the previous optimum is an excellent start.  Answering
every breach with the full multi-start solve (phase-1 feasibility
restoration + SLSQP + trust-constr retries) wastes almost all of that
locality.

:class:`DeltaRecomputePlanner` wraps a :class:`DualDABPlanner` and, in
``delta`` mode, answers a breach with a *local coefficient patch*:

1. the query's compiled template refreshes its log-coefficient vectors at
   the new values (`changed_items` records which log-variables moved);
2. a warm-started Newton-KKT solve on the template's log-space program —
   starting from the last optimum and its active set — computes the
   patched main solution (primary DABs + recompute rate);
3. the widening program gets the same treatment for the secondary DABs;
4. the patch is **accepted only if** every KKT condition holds to
   tolerance (primal feasibility, dual feasibility ``ν >= 0``, and the
   stationarity/working-set residual of
   :func:`repro.gp.sensitivity.kkt_residual`) *and* the assembled plan
   satisfies the paper's QAB-over-window fidelity invariant
   (:meth:`DABAssignment.guarantees_qab_over_window`).  Anything else —
   degenerate KKT systems, an active set that will not settle, value
   perturbations too violent for a local step — *declines*, and the
   planner falls back to the full multi-start solve.

Soundness: the log-space program is convex, so a point satisfying the KKT
conditions to tolerance is the global optimum to (the same) tolerance —
the patched objective matches what the full solve would return, which is
exactly what the property-based equivalence suite asserts.  The QAB
invariant is additionally enforced directly, so even a wrongly-accepted
patch could never ship an unsound plan.

In ``full`` mode the wrapper is a strict pass-through around the inner
planner (bit-identical plans; it only measures latency and counts solves),
which is what keeps ``--recompute-mode full`` byte-identical to the
pre-delta code while still feeding the recompute-latency benchmark.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import FilterError, GPError
from repro.filters.assignment import DABAssignment
from repro.filters.dual_dab import RECOMPUTE_RATE_VARIABLE, DualDABPlanner
from repro.gp.program import CompiledFunction, CompiledProgram
from repro.gp.sensitivity import kkt_residual
from repro.gp.solver import FEASIBILITY_TOL, _Y_BOUND
from repro.queries.bank_index import template_key
from repro.queries.deviation import primary_variable, secondary_variable
from repro.queries.polynomial import PolynomialQuery

#: Modes the planner (and the ``--recompute-mode`` flag) accepts.
RECOMPUTE_MODES = ("full", "delta")

#: Constraints within this of active (log-space) seed the working set.
#: Loose on purpose: a coefficient refresh shifts a previously-active
#: constraint's value by roughly the relative value change, so the seed
#: must catch "active at the *old* optimum" — a spurious inclusion merely
#: costs one ν<0 drop round, a missed one leaves the KKT system without
#: the constraint that carries all the curvature (a qab constraint sitting
#: at -0.04 after a volatile tick would stall Newton entirely at 3e-2).
_WORKING_SET_TOL = 0.1

#: Multipliers below this are treated as negative (drop from working set).
_DUAL_TOL = 1e-9

#: Largest per-coordinate log-space Newton step taken at once (e^2 ≈ 7.4×
#: in the original space); larger proposals are damped, not trusted.
_MAX_LOG_STEP = 2.0

#: Latency samples kept per category (enough for stable p99 at any
#: realistic run length while bounding memory on soaks).
_MAX_LATENCY_SAMPLES = 100_000


# -- fast log-sum-exp kernels ------------------------------------------------------
#
# The solver's `_lse_value`/`_lse_grad` go through scipy's logsumexp/softmax,
# whose array-API dispatch costs ~0.25 ms per call — fine inside an SLSQP
# solve (two batched callbacks per iteration), fatal for a patch that sweeps
# every constraint several times.  These hand-rolled equivalents keep a
# Newton patch in the hundreds of microseconds; the solve path keeps scipy so
# full-mode trajectories stay bitwise identical to the pre-delta code.


def _fast_value(func: CompiledFunction, y: np.ndarray) -> float:
    z = func.A @ y + func.log_c
    if z.shape[0] == 1:
        return float(z[0])
    m = float(np.max(z))
    return m + math.log(float(np.sum(np.exp(z - m))))


def _fast_weights(func: CompiledFunction, y: np.ndarray) -> np.ndarray:
    z = func.A @ y + func.log_c
    w = np.exp(z - np.max(z))
    return w / w.sum()


def _fast_grad(func: CompiledFunction, y: np.ndarray) -> np.ndarray:
    if func.A.shape[0] == 1:
        return func.A[0]
    return _fast_weights(func, y) @ func.A


def _fast_hessian(func: CompiledFunction, y: np.ndarray) -> np.ndarray:
    weights = _fast_weights(func, y)
    weighted = func.A * weights[:, None]
    mean = weights @ func.A
    return func.A.T @ weighted - np.outer(mean, mean)


class _BatchedConstraints:
    """All constraint values of a compiled program in one sweep: the
    monomial (single-row) constraints collapse to a single matvec, only the
    few true posynomials (qab, recompute) pay a log-sum-exp each.  Built per
    patch, *after* the template refresh, so the offsets are current."""

    def __init__(self, compiled: CompiledProgram):
        self.m = len(compiled.constraints)
        linear_index: List[int] = []
        linear_rows: List[np.ndarray] = []
        linear_offsets: List[float] = []
        self.nonlinear: List[tuple] = []
        for i, func in enumerate(compiled.constraints):
            if func.A.shape[0] == 1:
                linear_index.append(i)
                linear_rows.append(func.A[0])
                linear_offsets.append(float(func.log_c[0]))
            else:
                self.nonlinear.append((i, func))
        dimension = len(compiled.variables)
        self.linear_index = np.asarray(linear_index, dtype=int)
        self.A_lin = (np.vstack(linear_rows) if linear_rows
                      else np.zeros((0, dimension)))
        self.c_lin = np.asarray(linear_offsets)

    def values(self, y: np.ndarray) -> np.ndarray:
        out = np.empty(self.m)
        if self.linear_index.size:
            out[self.linear_index] = self.A_lin @ y + self.c_lin
        for i, func in self.nonlinear:
            out[i] = _fast_value(func, y)
        return out


@dataclass
class PatchResult:
    """An accepted Newton-KKT patch of one compiled program."""

    values: Dict[str, float]
    objective: float
    residual: float
    iterations: int


@dataclass
class DeltaStats:
    """Patch/fallback/residual counters for the stats plane.

    ``patches``/``fallbacks`` partition the *window-breach* recomputes of
    delta mode (a breach either patched or fell back to the full solve);
    ``cold_solves`` are first-plan solves that had no previous optimum to
    patch from, and ``full_solves`` counts pass-through solves in ``full``
    mode.  Latency samples are kept per category so the benchmark can
    report breach-resolution percentiles for both modes.
    """

    mode: str = "full"
    patches: int = 0
    fallbacks: int = 0
    cold_solves: int = 0
    full_solves: int = 0
    #: Cold solves warm-started from a structurally-identical sibling's
    #: optimum (``share_templates`` mode — the shared bank-index stack).
    template_seeds: int = 0
    patch_newton_iterations: int = 0
    affected_items: int = 0
    last_residual: float = 0.0
    max_residual: float = 0.0
    declines: Dict[str, int] = field(default_factory=dict)
    patch_seconds: List[float] = field(default_factory=list)
    fallback_seconds: List[float] = field(default_factory=list)
    full_seconds: List[float] = field(default_factory=list)

    @property
    def breaches(self) -> int:
        return self.patches + self.fallbacks

    @property
    def patch_hit_rate(self) -> float:
        """Fraction of window breaches resolved without a full solve."""
        return self.patches / self.breaches if self.breaches else 0.0

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.breaches if self.breaches else 0.0

    def note_decline(self, reason: str) -> None:
        self.declines[reason] = self.declines.get(reason, 0) + 1

    def note_residual(self, residual: float) -> None:
        self.last_residual = float(residual)
        if residual > self.max_residual:
            self.max_residual = float(residual)

    def _record(self, samples: List[float], seconds: float) -> None:
        if len(samples) < _MAX_LATENCY_SAMPLES:
            samples.append(float(seconds))

    def record_patch(self, seconds: float) -> None:
        self.patches += 1
        self._record(self.patch_seconds, seconds)

    def record_fallback(self, seconds: float) -> None:
        self.fallbacks += 1
        self._record(self.fallback_seconds, seconds)

    def record_cold(self, seconds: float) -> None:
        self.cold_solves += 1
        self._record(self.full_seconds, seconds)

    def record_full(self, seconds: float) -> None:
        self.full_solves += 1
        self._record(self.full_seconds, seconds)

    def breach_seconds(self) -> List[float]:
        """Latencies of breach-driven recomputes: patches + fallbacks in
        delta mode, the pass-through solves in full mode."""
        if self.mode == "delta":
            return self.patch_seconds + self.fallback_seconds
        return self.full_seconds

    def latency_summary(self) -> Dict[str, float]:
        """The ``recompute_latency`` section: breach-resolution percentiles
        (milliseconds) plus patch-hit/fallback rates."""
        samples = self.breach_seconds()
        summary: Dict[str, float] = {
            "mode": self.mode,
            "samples": len(samples),
            "patches": self.patches,
            "fallbacks": self.fallbacks,
            "cold_solves": self.cold_solves,
            "full_solves": self.full_solves,
            "template_seeds": self.template_seeds,
            "patch_hit_rate": round(self.patch_hit_rate, 4),
            "fallback_rate": round(self.fallback_rate, 4),
        }
        if samples:
            arr = np.asarray(samples) * 1000.0
            for label, q in (("p50", 50), ("p95", 95), ("p99", 99)):
                summary[f"{label}_ms"] = round(float(np.percentile(arr, q)), 4)
            summary["mean_ms"] = round(float(arr.mean()), 4)
        return summary

    def snapshot(self) -> Dict[str, object]:
        """Counter snapshot for the service stats plane (no latency lists)."""
        return {
            "mode": self.mode,
            "patches": self.patches,
            "fallbacks": self.fallbacks,
            "cold_solves": self.cold_solves,
            "full_solves": self.full_solves,
            "template_seeds": self.template_seeds,
            "patch_hit_rate": round(self.patch_hit_rate, 4),
            "last_residual": self.last_residual,
            "max_residual": self.max_residual,
            "declines": dict(self.declines),
        }


def _newton_working_set(
    compiled: CompiledProgram,
    y0: np.ndarray,
    working: Sequence[int],
    max_iterations: int,
    kkt_tol: float,
):
    """Newton on the KKT equalities of a fixed working set.

    Solves ``min F0(y)  s.t.  F_i(y) = 0, i in working`` from ``y0`` by
    iterating the (regularised) KKT system

        [ H   Aᵀ ] [dy]   [-(∇F0 + Aᵀν)]
        [ A   0  ] [dν] = [    -F       ]

    where ``H`` is the Lagrangian Hessian with multipliers clipped at zero
    (each term is PSD, so ``H`` stays PSD).  Returns ``(y, ν, residual,
    iterations)`` with ``residual`` the *unregularised* KKT residual —
    acceptance never trusts the damping/regularisation tricks used to get
    there.
    """
    n = y0.shape[0]
    constraints = [compiled.constraints[i] for i in working]
    k = len(constraints)
    y = y0.copy()
    # Seed the multipliers with the NNLS stationarity fit (the sensitivity
    # machinery's recovery) instead of zero: the Lagrangian Hessian only
    # has curvature in the secondary-DAB directions through ν-weighted
    # constraint Hessians, so a zero seed makes the first KKT system
    # singular and the damped steps stall.
    nu = np.zeros(k)
    if k:
        from scipy.optimize import nnls

        A0 = np.vstack([_fast_grad(func, y) for func in constraints])
        try:
            nu = nnls(A0.T, -_fast_grad(compiled.objective, y))[0]
        except (ValueError, RuntimeError):
            nu = np.zeros(k)
    eye = np.eye(n)
    residual = math.inf
    for iteration in range(max_iterations):
        grad0 = _fast_grad(compiled.objective, y)
        if k:
            A = np.vstack([_fast_grad(func, y) for func in constraints])
            c = np.array([_fast_value(func, y) for func in constraints])
            stationarity = grad0 + A.T @ nu
            residual = max(float(np.max(np.abs(stationarity))),
                           float(np.max(np.abs(c))))
        else:
            A = np.zeros((0, n))
            c = np.zeros(0)
            stationarity = grad0
            residual = float(np.max(np.abs(stationarity))) if n else 0.0
        if residual <= kkt_tol:
            return y, nu, residual, iteration
        H = _fast_hessian(compiled.objective, y)
        for multiplier, func in zip(nu, constraints):
            if multiplier > 0.0 and func.A.shape[0] > 1:
                H = H + multiplier * _fast_hessian(func, y)
        system = np.zeros((n + k, n + k))
        system[:n, :n] = H + 1e-10 * eye
        system[:n, n:] = A.T
        system[n:, :n] = A
        rhs = np.concatenate([-stationarity, -c])
        try:
            step = np.linalg.solve(system, rhs)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(system, rhs, rcond=None)[0]
        if not np.all(np.isfinite(step)):
            return y, nu, math.inf, iteration
        dy, dnu = step[:n], step[n:]
        largest = float(np.max(np.abs(dy))) if n else 0.0
        scale = _MAX_LOG_STEP / largest if largest > _MAX_LOG_STEP else 1.0
        y = np.clip(y + scale * dy, -_Y_BOUND, _Y_BOUND)
        nu = nu + scale * dnu
    return y, nu, residual, max_iterations


def newton_patch(
    compiled: CompiledProgram,
    start: Optional[Mapping[str, float]],
    kkt_tol: float = 1e-7,
    feasibility_tol: float = FEASIBILITY_TOL,
    max_newton_iterations: int = 12,
    max_working_set_rounds: int = 4,
) -> Optional[PatchResult]:
    """Warm-started Newton-KKT patch of a refreshed compiled program.

    ``start`` is the previous optimum (original-space values, every
    variable present and positive).  Returns the patched solution, or
    ``None`` whenever any acceptance condition fails — the caller then
    falls back to the full multi-start solve.  Never raises on numerical
    trouble: a bad patch is a decline, not an error.
    """
    if start is None:
        return None
    order = compiled.variables
    y = np.empty(len(order))
    for j, name in enumerate(order):
        value = start.get(name)
        if value is None or not (value > 0.0) or not math.isfinite(value):
            return None
        y[j] = math.log(value)
    y = np.clip(y, -_Y_BOUND, _Y_BOUND)

    batched = _BatchedConstraints(compiled)
    m = batched.m

    # Seed the working set with the constraints (near-)active or violated
    # at the warm start under the *new* coefficients.
    initial = batched.values(y) if m else np.zeros(0)
    working = [i for i in range(m) if initial[i] >= -_WORKING_SET_TOL]

    iterations = 0
    log_feas = math.log1p(feasibility_tol)
    for _ in range(max_working_set_rounds):
        y_next, nu, residual, used = _newton_working_set(
            compiled, y, working, max_newton_iterations, kkt_tol)
        iterations += used
        if not math.isfinite(residual) or residual > kkt_tol:
            return None
        y = y_next
        values_now = batched.values(y) if m else np.zeros(0)
        violated = [i for i in range(m)
                    if i not in working and values_now[i] > log_feas]
        negative = [j for j, multiplier in enumerate(nu)
                    if multiplier < -_DUAL_TOL]
        if not violated and not negative:
            objective = math.exp(_fast_value(compiled.objective, y))
            final_residual = kkt_residual(
                compiled, y, working, np.maximum(nu, 0.0))
            if final_residual > 10.0 * kkt_tol:
                return None
            return PatchResult(
                values={name: float(math.exp(y[j]))
                        for j, name in enumerate(order)},
                objective=objective,
                residual=final_residual,
                iterations=iterations,
            )
        if negative:
            # Drop the most negative multiplier's constraint; the convex
            # active-set update that cannot cycle within the round budget.
            drop = working[min(negative, key=lambda j: nu[j])]
            working = [i for i in working if i != drop]
        working = sorted(set(working) | set(violated))
    return None


class DeltaRecomputePlanner:
    """Patch-first recompute wrapper around a :class:`DualDABPlanner`.

    Sits *below* the Different-Sum / Half-and-Half mirroring wrappers (so
    it only ever sees PPQs, exactly like the inner planner) and *above*
    the inner :class:`DualDABPlanner`.  ``mode="full"`` is a strict
    pass-through — identical plans, only timing/counting added — which is
    the default wiring so existing runs stay bit-identical.
    """

    def __init__(
        self,
        inner: DualDABPlanner,
        mode: str = "delta",
        kkt_tol: float = 1e-7,
        max_newton_iterations: int = 12,
        max_working_set_rounds: int = 4,
        share_templates: bool = False,
    ):
        if mode not in RECOMPUTE_MODES:
            raise FilterError(
                f"recompute mode must be one of {RECOMPUTE_MODES}, got {mode!r}")
        if mode == "delta" and not inner.use_compiled:
            raise FilterError(
                "delta recompute needs the compiled-GP templates; build the "
                "inner DualDABPlanner with use_compiled=True")
        self.inner = inner
        self.mode = mode
        self.kkt_tol = float(kkt_tol)
        self.max_newton_iterations = int(max_newton_iterations)
        self.max_working_set_rounds = int(max_working_set_rounds)
        self.stats = DeltaStats(mode=mode)
        #: query name -> {"main": last main-solve values,
        #:                "secondary": last widened secondary DABs}
        self._states: Dict[str, Dict[str, Dict[str, float]]] = {}
        #: Shared-bank-index stack: seed a *cold* query's multi-start solve
        #: from a structurally-identical sibling's last optimum.  Same
        #: template key means same items and hence same GP variable names,
        #: so a sibling's point is a valid start; the full solve still
        #: verifies every constraint, so this only moves the start point,
        #: never soundness.
        self.share_templates = bool(share_templates)
        self._anchors: Dict[tuple, Dict[str, float]] = {}

    @property
    def recompute_mode(self) -> str:
        """The mode, discoverable by cache layers for mode-aware keying."""
        return self.mode

    # -- planning -----------------------------------------------------------------

    def plan(self, query: PolynomialQuery,
             values: Mapping[str, float]) -> DABAssignment:
        started = _time.perf_counter()
        if self.mode != "delta":
            plan = self.inner.plan(query, values)
            self.stats.record_full(_time.perf_counter() - started)
            return plan

        state = self._states.get(query.name)
        if state is not None:
            plan = self._try_patch(query, values, state)
            if plan is not None:
                self.stats.record_patch(_time.perf_counter() - started)
                return plan
            plan = self._full_solve(query, values)
            self.stats.record_fallback(_time.perf_counter() - started)
            return plan
        if self.share_templates and self.inner.warm_start(query.name) is None:
            anchor = self._anchors.get(template_key(query))
            if anchor is not None:
                self.inner.seed_warm_start(query.name, dict(anchor))
                self.stats.template_seeds += 1
        plan = self._full_solve(query, values)
        self.stats.record_cold(_time.perf_counter() - started)
        return plan

    def _full_solve(self, query: PolynomialQuery,
                    values: Mapping[str, float]) -> DABAssignment:
        """The inner multi-start solve, with the patch state re-anchored on
        its result (GP failures propagate — the coordinator's degradation
        machinery owns those)."""
        try:
            plan = self.inner.plan(query, values)
        except GPError:
            # No sound optimum to patch from next breach.
            self._states.pop(query.name, None)
            raise
        main = self.inner.warm_start(query.name)
        if main is not None and plan.secondary is not None:
            self._states[query.name] = {
                "main": dict(main),
                "secondary": dict(plan.secondary),
            }
        if self.share_templates and main is not None:
            self._anchors[template_key(query)] = dict(main)
        return plan

    def _try_patch(self, query: PolynomialQuery, values: Mapping[str, float],
                   state: Dict[str, Dict[str, float]]) -> Optional[DABAssignment]:
        """One breach, patched — or ``None`` with the decline reason noted."""
        stats = self.stats
        template = self.inner.compiled_template(query.name)
        if template is None:
            stats.note_decline("no_template")
            return None
        items = query.variables
        try:
            affected = template.changed_items(values)
            template.refresh(values)
        except (KeyError, ValueError, OverflowError):
            stats.note_decline("refresh_error")
            return None
        stats.affected_items += len(affected)

        main = newton_patch(
            template.compiled, state["main"],
            kkt_tol=self.kkt_tol,
            max_newton_iterations=self.max_newton_iterations,
            max_working_set_rounds=self.max_working_set_rounds,
        )
        if main is None:
            stats.note_decline("main_kkt")
            return None
        stats.patch_newton_iterations += main.iterations

        primary = {name: main.values[primary_variable(name)] for name in items}
        secondary = {name: main.values[secondary_variable(name)]
                     for name in items}
        for name in items:
            if secondary[name] < primary[name]:
                secondary[name] = primary[name]

        if self.inner.widen_windows:
            widen = self._patch_widening(query, values, primary, secondary,
                                         state, template)
            if widen is None:
                return None
            secondary = widen

        try:
            plan = DABAssignment(
                primary=primary,
                secondary=secondary,
                reference_values={name: float(values[name]) for name in items},
                recompute_rate=main.values[RECOMPUTE_RATE_VARIABLE],
                objective=main.objective,
            )
        except FilterError:
            stats.note_decline("invalid_assignment")
            return None
        # The fidelity invariant is a hard post-condition: even an
        # erroneously-accepted KKT point may never ship an unsound plan.
        if not plan.guarantees_qab_over_window(query):
            stats.note_decline("qab_invariant")
            return None

        state["main"] = dict(main.values)
        state["secondary"] = dict(secondary)
        # Keep the full-solve path warm-started from the patched optimum,
        # exactly as a full solve would have left it.
        self.inner.seed_warm_start(query.name, main.values)
        if self.share_templates:
            self._anchors[template_key(query)] = dict(main.values)
        stats.note_residual(main.residual)
        return plan

    def _patch_widening(self, query, values, primary, main_secondary,
                        state, template) -> Optional[Dict[str, float]]:
        """Newton-patch the secondary-widening program; ``None`` declines."""
        stats = self.stats
        items = query.variables
        try:
            widen_template = template.widen_template(values, primary)
            widen_template.refresh(values, primary)
        except GPError:
            stats.note_decline("widen_infeasible")
            return None
        start = {}
        previous = state.get("secondary", {})
        for name in items:
            c = previous.get(name, main_secondary[name])
            start[secondary_variable(name)] = max(float(c), primary[name])
        result = newton_patch(
            widen_template.compiled, start,
            kkt_tol=self.kkt_tol,
            max_newton_iterations=self.max_newton_iterations,
            max_working_set_rounds=self.max_working_set_rounds,
        )
        if result is None:
            stats.note_decline("widen_kkt")
            return None
        secondary = {name: result.values[secondary_variable(name)]
                     for name in items}
        for name in items:
            if secondary[name] < primary[name]:
                secondary[name] = float(primary[name])
        return secondary

    # -- stack protocol -----------------------------------------------------------

    def forget_query(self, name: str) -> None:
        """Drop *name*'s anchor state and the inner planner's per-name
        caches (the query may be re-registered with a different shape)."""
        prefix = f"{name}__"
        for key in [k for k in self._states
                    if k == name or k.startswith(prefix)]:
            del self._states[key]
        forget = getattr(self.inner, "forget_query", None)
        if forget is not None:
            forget(name)

    def clear_warm_starts(self) -> None:
        """Fault resync: drop the inner solver starts *and* the patch
        anchors — a patch from a pre-resync optimum would face arbitrary
        value drift, exactly what the resync says happened."""
        self._states.clear()
        self._anchors.clear()
        self.inner.clear_warm_starts()


def find_delta_planner(planner: object) -> Optional[DeltaRecomputePlanner]:
    """Walk a planner stack (``.planner``/``.base``/``.inner`` links) to the
    :class:`DeltaRecomputePlanner`, if one is wired in."""
    seen = set()
    node = planner
    while node is not None and id(node) not in seen:
        if isinstance(node, DeltaRecomputePlanner):
            return node
        seen.add(id(node))
        node = (getattr(node, "planner", None)
                or getattr(node, "base", None)
                or getattr(node, "inner", None))
    return None
