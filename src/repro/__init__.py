"""repro — reproduction of *Handling Non-linear Polynomial Queries over
Dynamic Data* (Shah & Ramamritham, ICDE 2008).

Public API tour
---------------
Queries and accuracy bounds::

    from repro import parse_query
    query = parse_query("x*y : 5")          # the paper's running example

DAB assignment (the paper's contribution)::

    from repro import CostModel, DualDABPlanner
    model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=5.0)
    plan = DualDABPlanner(model).plan(query, {"x": 2.0, "y": 2.0})
    plan.primary, plan.secondary             # b and c per item

Trace-driven evaluation::

    from repro import SimulationConfig, run_simulation, scaled_scenario
    scenario = scaled_scenario(query_count=20)
    result = run_simulation(SimulationConfig(
        queries=scenario.queries, traces=scenario.traces,
        algorithm="dual_dab", recompute_cost=5.0))
    result.metrics.recomputations, result.metrics.total_cost

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro.exceptions import (
    FilterError,
    GPError,
    InfeasibleProblemError,
    InvalidAssignmentError,
    InvalidQueryError,
    NotPositiveCoefficientError,
    NotPosynomialError,
    QueryError,
    QueryParseError,
    ReproError,
    SimulationError,
    SolverFailedError,
    TraceError,
)
from repro.gp import GeometricProgram, GPSolution, Monomial, Posynomial
from repro.queries import (
    DataItem,
    ItemRegistry,
    PolynomialQuery,
    QueryTerm,
    parse_query,
)
from repro.filters import (
    AAOPlanner,
    CostModel,
    DABAssignment,
    DifferentSumPlanner,
    DualDABPlanner,
    EQIPlanner,
    HalfAndHalfPlanner,
    MultiQueryAssignment,
    OptimalRefreshPlanner,
    SharfmanStyleBaseline,
    UniformAllocationBaseline,
    assign_laq,
    merge_primary,
)
from repro.dynamics import (
    DataDynamicsModel,
    GBMTraceGenerator,
    MonotonicTraceGenerator,
    RandomWalkTraceGenerator,
    SampledRateEstimator,
    Trace,
    TraceSet,
    UnitRateEstimator,
    estimate_rates,
    generate_trace_set,
)
from repro.simulation import (
    AlgorithmName,
    DisseminationConfig,
    SimulationConfig,
    SimulationMetrics,
    SimulationResult,
    run_dissemination,
    run_simulation,
)
from repro.workloads import (
    WorkloadConfig,
    generate_arbitrage_queries,
    generate_portfolio_queries,
    paper_registry,
    paper_traces,
    scaled_scenario,
)

__version__ = "1.0.0"

__all__ = [
    # exceptions
    "ReproError", "GPError", "NotPosynomialError", "InfeasibleProblemError",
    "SolverFailedError", "QueryError", "QueryParseError", "InvalidQueryError",
    "FilterError", "NotPositiveCoefficientError", "InvalidAssignmentError",
    "SimulationError", "TraceError",
    # gp
    "Monomial", "Posynomial", "GeometricProgram", "GPSolution",
    # queries
    "DataItem", "ItemRegistry", "QueryTerm", "PolynomialQuery", "parse_query",
    # filters
    "CostModel", "DABAssignment", "MultiQueryAssignment", "merge_primary",
    "OptimalRefreshPlanner", "DualDABPlanner", "HalfAndHalfPlanner",
    "DifferentSumPlanner", "EQIPlanner", "AAOPlanner",
    "SharfmanStyleBaseline", "UniformAllocationBaseline", "assign_laq",
    # dynamics
    "DataDynamicsModel", "Trace", "TraceSet", "GBMTraceGenerator",
    "RandomWalkTraceGenerator", "MonotonicTraceGenerator",
    "SampledRateEstimator", "UnitRateEstimator", "estimate_rates",
    "generate_trace_set",
    # simulation
    "AlgorithmName", "SimulationConfig", "SimulationResult",
    "SimulationMetrics", "run_simulation", "DisseminationConfig",
    "run_dissemination",
    # workloads
    "WorkloadConfig", "generate_portfolio_queries", "generate_arbitrage_queries",
    "paper_registry", "paper_traces", "scaled_scenario",
    "__version__",
]
