"""Live service layer: the paper's architecture over real sockets.

The discrete-event simulator proves the planning algorithms; this package
*deploys* them.  It contains:

* :mod:`repro.service.core` — :class:`~repro.service.core.CoordinatorCore`,
  the protocol-agnostic planning/recomputation state machine shared with
  the simulator's coordinator (which is now a thin event-loop adapter
  over it);
* :mod:`repro.service.protocol` — the framed, versioned wire protocol
  (length-prefixed JSON messages);
* :mod:`repro.service.transports` — asyncio byte-stream plumbing plus an
  in-process loopback transport so tests run without sockets;
* :mod:`repro.service.server` — the asyncio
  :class:`~repro.service.server.CoordinatorServer`;
* :mod:`repro.service.agent` — the :class:`~repro.service.agent.SourceAgent`
  push source (trace replay or programmatic ticks, local primary-DAB
  filtering, reconnect-with-resync);
* :mod:`repro.service.client` — the
  :class:`~repro.service.client.ServiceClient` subscriber SDK;
* :mod:`repro.service.loadgen` — the N-sources × M-subscribers load
  generator behind ``repro loadgen``;
* :mod:`repro.service.chaos` — seeded wire-level fault injection
  (:class:`~repro.service.chaos.FaultSchedule`,
  :class:`~repro.service.chaos.FaultInjector`) that composes with any
  transport;
* :mod:`repro.service.resilience` — :class:`~repro.service.resilience.RetryPolicy`
  backoff and the :class:`~repro.service.resilience.CircuitBreaker` guarding
  the solver;
* :mod:`repro.service.soak` — the chaos soak harness behind
  ``repro chaos-soak``, auditing end-to-end QAB correctness under faults;
* :mod:`repro.service.cluster` — the sharded coordinator cluster: stable
  item hashing, the cross-shard B/k budget decomposition, the
  :class:`~repro.service.cluster.router.ClusterCoordinator` shard
  router, the NOTIFY fan-out broker tier and journal-backed shard
  failover (``repro cluster serve``/``loadgen``,
  ``repro chaos-soak --shards N``).

Only ``core`` and ``protocol`` are imported eagerly: the simulator imports
:class:`CoordinatorCore` from here, and the asyncio modules import the
simulator (for planners and metrics), so the heavier modules load lazily
to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.service.core import CoordinatorCore, RecomputeMode
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    MessageType,
    ProtocolError,
    encode_frame,
)

__all__ = [
    "CoordinatorCore",
    "RecomputeMode",
    "FrameDecoder",
    "MessageType",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_frame",
    # lazily loaded:
    "CoordinatorServer",
    "SourceAgent",
    "ServiceClient",
    "run_loadgen",
    "loopback_pair",
    "MessageStream",
    "FaultSchedule",
    "FaultInjector",
    "chaos_stream",
    "chaos_loopback_pair",
    "RetryPolicy",
    "RetryExhausted",
    "CircuitBreaker",
    "BreakerState",
    "retry_async",
    "run_chaos_soak",
    "ClusterCoordinator",
    "build_scenario_cluster",
    "run_cluster_loadgen",
    "ShardMap",
    "stable_shard",
]

_LAZY = {
    "CoordinatorServer": ("repro.service.server", "CoordinatorServer"),
    "SourceAgent": ("repro.service.agent", "SourceAgent"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "run_loadgen": ("repro.service.loadgen", "run_loadgen"),
    "loopback_pair": ("repro.service.transports", "loopback_pair"),
    "MessageStream": ("repro.service.transports", "MessageStream"),
    "FaultSchedule": ("repro.service.chaos", "FaultSchedule"),
    "FaultInjector": ("repro.service.chaos", "FaultInjector"),
    "chaos_stream": ("repro.service.chaos", "chaos_stream"),
    "chaos_loopback_pair": ("repro.service.chaos", "chaos_loopback_pair"),
    "RetryPolicy": ("repro.service.resilience", "RetryPolicy"),
    "RetryExhausted": ("repro.service.resilience", "RetryExhausted"),
    "CircuitBreaker": ("repro.service.resilience", "CircuitBreaker"),
    "BreakerState": ("repro.service.resilience", "BreakerState"),
    "retry_async": ("repro.service.resilience", "retry_async"),
    "run_chaos_soak": ("repro.service.soak", "run_chaos_soak"),
    "ClusterCoordinator": ("repro.service.cluster.router",
                           "ClusterCoordinator"),
    "build_scenario_cluster": ("repro.service.cluster.router",
                               "build_scenario_cluster"),
    "run_cluster_loadgen": ("repro.service.cluster.loadgen",
                            "run_cluster_loadgen"),
    "ShardMap": ("repro.service.cluster.routing", "ShardMap"),
    "stable_shard": ("repro.service.cluster.routing", "stable_shard"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
