"""The live coordinator: an asyncio server over :class:`CoordinatorCore`.

One :class:`CoordinatorServer` owns the same
:class:`~repro.service.core.CoordinatorCore` the simulator's coordinator
wraps — cache, compiled-query-bank evaluation, secondary-DAB window
checks, recomputation through the compiled-GP planner stack — and speaks
the framed protocol of :mod:`repro.service.protocol` to two kinds of
peers:

* **sources** (``REGISTER_SOURCE`` → ``REFRESH``/``HEARTBEAT`` in,
  ``DAB_UPDATE`` out).  Refreshes are deduplicated by per-item sequence
  number (a duplicate or overtaken refresh never clobbers the cache —
  the simulator's fault-mode semantics, always on here because real
  networks reorder), and registration doubles as resync: the reply
  programs the source's current primary DABs with their epochs and
  carries the accepted-seq high-water marks so a restarted source
  resumes numbering above the dedup guard instead of being muted by it.
* **subscribers** (``QUERY_SUB`` in, ``SNAPSHOT`` + batched ``NOTIFY``
  out).  Notifications are fanned out through a bounded per-connection
  queue drained by a writer task; a subscriber that stops reading long
  enough for its queue to fill is a *slow consumer* and is evicted
  rather than allowed to stall the coordinator or balloon its memory.

The server is single-event-loop by design: every message handler runs on
the loop thread, so core state needs no locks — exactly the
single-coordinator model of the paper (§II).
"""

from __future__ import annotations

import asyncio
import time as _time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import ReproError, SimulationError
from repro.queries.polynomial import PolynomialQuery
from repro.service import protocol
from repro.service.core import CoordinatorCore, RecomputeMode
from repro.service.journal import Journal, JournalError, plan_from_wire
from repro.service.protocol import MessageType, ProtocolError
from repro.service.resilience import RetryPolicy
from repro.service.transports import MessageStream, TransportClosed, loopback_pair
from repro.simulation.metrics import MetricsCollector

#: NOTIFY batches a subscriber may have outstanding before it is evicted.
DEFAULT_NOTIFY_QUEUE_LIMIT = 64

#: Queue-limit floor granted to ``QUERY_SUB trunk=True`` subscriptions —
#: infrastructure consumers (a cluster router's shard trunk, a fan-out
#: broker's upstream) whose eviction would sever every client behind
#: them.  Deep enough to absorb a full replay storm's NOTIFY burst.
TRUNK_QUEUE_LIMIT = 4096


class _Subscriber:
    """One QUERY_SUB connection and its bounded outbound queue."""

    def __init__(self, sub_id: int, stream: MessageStream,
                 queries: Optional[Set[str]], limit: int):
        self.sub_id = sub_id
        self.stream = stream
        #: ``None`` subscribes to every query.
        self.queries = queries
        self.queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = (
            asyncio.Queue(maxsize=limit))
        self.writer_task: Optional[asyncio.Task] = None
        self.evicted = False
        #: Dynamic queries this subscriber holds a refcount on; released
        #: (and the query removed on the last reference) when it drops.
        self.registered: Set[str] = set()

    def wants(self, query_name: str) -> bool:
        return self.queries is None or query_name in self.queries


class CoordinatorServer:
    """Serve continuous polynomial queries over live refresh streams."""

    def __init__(
        self,
        queries: Sequence[PolynomialQuery],
        planner: object,
        initial_values: Mapping[str, float],
        item_to_source: Mapping[str, int],
        mode: RecomputeMode = RecomputeMode.ON_WINDOW_VIOLATION,
        aao_planner: Optional[object] = None,
        aao_period: Optional[int] = None,
        vectorize: bool = True,
        recompute_cost: float = 1.0,
        metrics: Optional[MetricsCollector] = None,
        notify_queue_limit: int = DEFAULT_NOTIFY_QUEUE_LIMIT,
        writer_join_timeout: float = 1.0,
        lease_duration: Optional[float] = None,
        lease_check_interval: Optional[float] = None,
        suspect_drift_rel: float = 0.05,
        dab_retry_policy: Optional[RetryPolicy] = None,
        solver_breaker: Optional[object] = None,
        clock: Callable[[], float] = _time.time,
        journal: Optional[Journal] = None,
        bootstrap: bool = True,
        recompute_strategy: str = "full",
        bank_index: str = "flat",
        shard_id: Optional[int] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsCollector(
            recompute_cost=recompute_cost)
        self.core = CoordinatorCore(
            queries=queries, planner=planner, mode=mode, metrics=self.metrics,
            initial_values=initial_values, item_to_source=item_to_source,
            aao_planner=aao_planner, aao_period=aao_period,
            vectorize=vectorize, solver_breaker=solver_breaker,
            recompute_strategy=recompute_strategy,
            bank_index=bank_index,
        )
        #: ``bootstrap=False`` defers the initial GP solves to
        #: :meth:`restore` — the journaled start path, where a snapshot
        #: usually supersedes them and solving first would be waste.
        self._bootstrapped = False
        if bootstrap:
            self.core.bootstrap()
            self._bootstrapped = True
        #: Optional write-ahead journal; :meth:`restore` must be called
        #: before serving when one is configured.  ``None`` leaves every
        #: code path byte-identical to the journal-less server.
        self.journal = journal
        self._journal_attached = False
        #: The last :meth:`restore` report (records replayed, wall time).
        self.last_recovery: Optional[Dict[str, Any]] = None
        self.notify_queue_limit = int(notify_queue_limit)
        self._query_names = {query.name for query in self.core.queries}
        #: name -> query object (O(1) duplicate/conflict checks on the
        #: incremental QUERY_SUB registration path — never an O(bank)
        #: scan) and name -> live subscriber refcount for queries added
        #: through QUERY_SUB ``definitions``.
        self._query_objects = {query.name: query
                               for query in self.core.queries}
        self._dynamic_refs: Dict[str, int] = {}

        #: How long a graceful subscriber drop waits for its writer task
        #: to flush before cancelling it (seconds).
        self.writer_join_timeout = float(writer_join_timeout)
        #: The time source for all liveness bookkeeping — wall clock by
        #: default, a logical step clock under the chaos soak.
        self.clock = clock
        #: One clock end-to-end: a breaker built without an explicit
        #: clock inherits ours instead of silently ticking wall time.
        if solver_breaker is not None and hasattr(solver_breaker, "bind_clock"):
            solver_breaker.bind_clock(clock)
        #: ``None`` disables the staleness-lease machinery entirely (the
        #: default: behaviour is then byte-identical to the pre-lease
        #: server).  Units are whatever ``clock`` counts.
        self.lease_duration = (float(lease_duration)
                               if lease_duration is not None else None)
        if lease_check_interval is not None:
            self.lease_check_interval: Optional[float] = float(lease_check_interval)
        else:
            self.lease_check_interval = (self.lease_duration / 4.0
                                         if self.lease_duration else None)
        self.suspect_drift_rel = float(suspect_drift_rel)
        #: item -> time its lease expired (or its seq gap was detected).
        self.suspect_since: Dict[str, float] = {}
        self._item_last_heard: Dict[str, float] = {}
        self._degraded_keys: frozenset = frozenset()
        #: ``None`` disables reliable DAB delivery (default); with a
        #: policy, every changed-bound DAB_UPDATE carries a ``msg_id``
        #: and is retried with backoff until acked or given up on.
        self.dab_retry_policy = dab_retry_policy
        self._outstanding_dabs: Dict[int, Dict[str, Any]] = {}
        self._dab_msg_counter = 0
        self._maintenance_task: Optional[asyncio.Task] = None
        self.solver_breaker = solver_breaker

        #: source_id -> its (sole) live stream; replaced on re-register.
        self._source_streams: Dict[int, MessageStream] = {}
        self._subscribers: Dict[int, _Subscriber] = {}
        self._sub_counter = 0
        #: item -> highest refresh sequence number accepted (dedup guard).
        self.last_seq: Dict[str, int] = {}
        #: source_id -> wall-clock time of the last refresh/heartbeat.
        self.last_heard: Dict[int, float] = {}
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._handler_tasks: Set[asyncio.Task] = set()
        #: This coordinator's shard id inside a cluster (``None`` when it
        #: is the whole deployment); stamped on NOTIFY/SNAPSHOT frames so
        #: the router can attribute partial aggregates.
        self.shard_id = int(shard_id) if shard_id is not None else None
        #: The newest shard-map epoch this coordinator has been told
        #: about (``None`` until a cluster reshard happens — all frames
        #: then stay byte-identical to the pre-resharding protocol).
        #: Refreshes stamped with an older epoch are fenced off: after a
        #: migration cutover, a buffered or in-flight frame routed under
        #: the old map must not land on an item this shard no longer
        #: owns (or owns again under different budgets).
        self.map_epoch: Optional[int] = None
        #: True once :meth:`close` ran.  A closed server refuses new
        #: connections — this is what makes a supervisor-`crash()`ed
        #: shard behave like a dead process instead of a still-answering
        #: zombie behind the router's stale plumbing.
        self.closed = False
        #: ``(host, port)`` once :meth:`serve_tcp` binds; ``None`` for
        #: loopback-only embeddings.
        self.listen_address: Optional[Tuple[str, int]] = None
        self.stats = {
            "refreshes_accepted": 0,
            "refreshes_rejected_stale_seq": 0,
            "refreshes_rejected_stale_map_epoch": 0,
            "notifies_sent": 0,
            "dab_updates_sent": 0,
            "slow_consumer_evictions": 0,
            "protocol_errors": 0,
            "sources_registered": 0,
            "subscribers": 0,
            "heartbeats_received": 0,
            "seq_gaps_detected": 0,
            "dab_acks_received": 0,
        }

    # -- lifecycle ---------------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> Tuple[str, int]:
        """Start accepting TCP connections; returns the bound address."""
        async def _accept(reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
            peer = writer.get_extra_info("peername")
            stream = MessageStream(reader, writer, name=str(peer))
            await self.handle_connection(stream)

        self._tcp_server = await asyncio.start_server(_accept, host, port)
        sockname = self._tcp_server.sockets[0].getsockname()
        self.listen_address = (sockname[0], sockname[1])
        self.start_maintenance()
        return sockname[0], sockname[1]

    def start_maintenance(self) -> None:
        """Run lease checks and DAB retries on a background task.

        Started automatically by :meth:`serve_tcp`; loopback embeddings
        (tests, the chaos soak) drive :meth:`check_leases` /
        :meth:`check_retries` explicitly instead, so their event order
        stays deterministic.  A no-op when neither machinery is enabled.
        """
        if self._maintenance_task is not None:
            return
        if self.lease_check_interval is None and self.dab_retry_policy is None:
            return
        self._maintenance_task = asyncio.ensure_future(self._maintenance_loop())

    async def _maintenance_loop(self) -> None:
        interval = self.lease_check_interval or 1.0
        while True:
            await asyncio.sleep(interval)
            await self.check_leases()
            await self.check_retries()

    def adopt_connection(self, server_end: MessageStream) -> None:
        """Serve an externally-built stream (a chaos-wrapped loopback
        end, for instance) on this server."""
        if self.closed:
            # A dead process cannot accept sockets; a crashed in-process
            # shard must not either, or failover tests would be talking
            # to a zombie.
            server_end.close()
            return
        task = asyncio.ensure_future(self.handle_connection(server_end))
        self._handler_tasks.add(task)
        task.add_done_callback(self._handler_tasks.discard)

    def connect_loopback(self) -> MessageStream:
        """A client-end stream connected in process (no sockets) — the
        transport the CI suite and the in-process loadgen run on."""
        client_end, server_end = loopback_pair()
        self.adopt_connection(server_end)
        return client_end

    async def close(self, final_snapshot: bool = True) -> None:
        """Shut down.  ``final_snapshot=False`` models a hard kill: the
        journal handle is dropped with no parting snapshot, so the next
        start must recover from the WAL tail alone (every append is
        unbuffered, so nothing accepted before the kill is lost)."""
        self.closed = True
        if self.journal is not None and self._journal_attached:
            self.core.journal = None
            self._journal_attached = False
            if final_snapshot:
                try:
                    self.journal.write_snapshot(self._recovery_state())
                except OSError:
                    pass               # best effort; the WAL stays authoritative
            # Appends are unbuffered, so closing the handle loses nothing
            # even on the kill path — only the parting snapshot is skipped.
            self.journal.close()
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            try:
                await self._maintenance_task
            except (asyncio.CancelledError, Exception):
                pass
            self._maintenance_task = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for subscriber in list(self._subscribers.values()):
            await self._drop_subscriber(subscriber)
        for stream in list(self._source_streams.values()):
            stream.close()
        self._source_streams.clear()
        for task in list(self._handler_tasks):
            task.cancel()
        for task in list(self._handler_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    # -- durability ------------------------------------------------------------------

    def _recovery_state(self) -> Dict[str, Any]:
        """Everything a restarted coordinator needs that is not derivable
        from the scenario itself: the core's cache/epochs/plans plus the
        server-plane seq high-water marks and lease bookkeeping.
        Outstanding DAB retries and the message-id counter are *not*
        persisted — re-registration re-programs every bound, superseding
        them (the same guarantee a source reconnect leans on)."""
        server_state: Dict[str, Any] = {
            "last_seq": dict(self.last_seq),
            "suspect_since": dict(self.suspect_since),
            "item_last_heard": dict(self._item_last_heard),
        }
        if self.map_epoch is not None:
            # Only once a reshard happened — pre-resharding snapshots
            # stay byte-identical to the old format.
            server_state["map_epoch"] = self.map_epoch
        return {
            "core": self.core.recovery_state(),
            "server": server_state,
        }

    def _restore_snapshot_state(self, state: Mapping[str, Any]) -> None:
        core_state = state.get("core")
        if isinstance(core_state, Mapping):
            self.core.restore_recovery_state(core_state)
        server_state = state.get("server")
        if isinstance(server_state, Mapping):
            for name, seq in (server_state.get("last_seq") or {}).items():
                self.last_seq[str(name)] = int(seq)
            for name, since in (server_state.get("suspect_since") or {}).items():
                self.suspect_since[str(name)] = float(since)
            for name, at in (server_state.get("item_last_heard") or {}).items():
                self._item_last_heard[str(name)] = float(at)
            if server_state.get("map_epoch") is not None:
                self.advance_map_epoch(int(server_state["map_epoch"]))

    def _replay_record(self, record: Mapping[str, Any]) -> None:
        """Apply one journal record directly to state — no metrics, no
        fanout, no re-journaling; replay must be side-effect free so a
        double restore converges on the same state."""
        kind = record.get("t")
        if kind == "refresh":
            item = str(record["item"])
            seq = record.get("seq")
            if seq is not None:
                self.last_seq[item] = max(self.last_seq.get(item, 0), int(seq))
            self.core.restore_cache_value(item, float(record["value"]))
        elif kind == "plan":
            name = str(record["q"])
            if name in self.core.query_names:
                self.core.plans[name] = plan_from_wire(record["plan"])
        elif kind == "aao":
            for name, plan in (record.get("plans") or {}).items():
                if str(name) in self.core.query_names:
                    self.core.plans[str(name)] = plan_from_wire(plan)
        elif kind == "bounds":
            for name, bound in (record.get("bounds") or {}).items():
                if str(name) in self.core.cache:
                    self.core._last_sent_bounds[str(name)] = float(bound)
            for name, epoch in (record.get("epochs") or {}).items():
                if str(name) in self.core.cache:
                    self.core.epochs[str(name)] = int(epoch)
        elif kind == "notify":
            for name, value in (record.get("values") or {}).items():
                self.core.restore_user_value(str(name), float(value))
        elif kind == "qadd":
            query = protocol.query_from_wire(record["query"])
            if query.name not in self.core.query_names:
                self.core.add_query(query, plan=False)
        elif kind == "qdel":
            name = str(record["name"])
            if name in self.core.query_names:
                self.core.remove_query(name)
        elif kind == "adopt":
            # A live reshard handed this shard an item mid-flight; the
            # record carries the transferred value, owning source and the
            # previous owner's seq high-water mark so replay restores the
            # same dedup floor the live hand-off installed.
            item = str(record["item"])
            seq = record.get("seq")
            if seq is not None:
                self.last_seq[item] = max(self.last_seq.get(item, 0), int(seq))
            self.core.adopt_item(item, float(record["value"]),
                                 source_id=record.get("source"))
        else:
            raise JournalError(f"unknown journal record type {kind!r}")

    def restore(self) -> Dict[str, Any]:
        """The journaled start path: open the WAL (truncating any torn
        tail), load the newest intact snapshot, replay the journal tail on
        top, and only then attach the journal so new work is logged.

        A fresh/empty directory falls through to the ordinary bootstrap
        plus an initial snapshot, so first-start behaviour matches the
        journal-less server exactly.  Restarted sources re-attach through
        the existing reconnect machinery: their registration reply carries
        the restored seq high-water marks and current bounds/epochs.
        """
        if self.journal is None:
            raise JournalError("restore() called on a server with no journal")
        if self._journal_attached:
            raise JournalError("restore() called twice")
        started = _time.perf_counter()
        journal = self.journal.open()
        snapshot = journal.latest_snapshot()
        replay_start = 0
        snapshot_index: Optional[int] = None
        if snapshot is not None:
            snapshot_index, state = snapshot
            self._restore_snapshot_state(state)
            self._bootstrapped = True
            replay_start = snapshot_index
        elif not self._bootstrapped:
            # Fresh directory — or every snapshot unreadable: bootstrap
            # first (mirroring the original start), then let any surviving
            # WAL records replay on top of it.
            self.core.bootstrap()
            self._bootstrapped = True
        replayed = 0
        for record in journal.records(start=replay_start):
            self._replay_record(record)
            replayed += 1
        if snapshot is None and replayed == 0:
            # Truly fresh: persist the starting point as snapshot zero so
            # the first compaction has a floor to measure from.
            journal.write_snapshot(self._recovery_state())
        elif replayed:
            # Replayed plans/values may be far from any cached warm start.
            self.core.clear_planner_warm_starts()
        # Replayed qadd/qdel records (and snapshot dynamic queries) grew
        # the bank behind the server's name maps — re-sync them.  The
        # subscribers holding the references died with the old process,
        # so restored dynamic queries start at refcount 0 and live until
        # a future subscriber claims and then releases them.
        self._query_names = {query.name for query in self.core.queries}
        self._query_objects = {query.name: query
                               for query in self.core.queries}
        self._dynamic_refs = {name: 0 for name in self.core.dynamic_names}
        self.core.journal = journal
        self._journal_attached = True
        self.last_recovery = {
            "snapshot_index": snapshot_index,
            "records_replayed": replayed,
            "recovery_seconds": _time.perf_counter() - started,
            "truncated_tail_bytes": journal.truncated_tail_bytes,
        }
        return dict(self.last_recovery)

    def _maybe_snapshot(self, force: bool = False) -> None:
        """Compact the recovery point once enough records accumulated."""
        if self.journal is None or not self._journal_attached:
            return
        if force or (self.journal.records_since_snapshot
                     >= self.journal.snapshot_every):
            self.journal.write_snapshot(self._recovery_state())

    # -- resharding ------------------------------------------------------------------

    def advance_map_epoch(self, epoch: Optional[int]) -> None:
        """Adopt a newer shard-map epoch (monotone; older ones ignored).

        Called by the cluster's migrator at each cutover and by the
        router when it reattaches a restored shard, so every live shard
        fences refreshes against the newest map it has seen."""
        if epoch is None:
            return
        epoch = int(epoch)
        if self.map_epoch is None or epoch > self.map_epoch:
            self.map_epoch = epoch

    def adopt_item(self, item: str, value: float, source_id: Optional[int],
                   seq_floor: int = 0) -> None:
        """Accept ownership of *item* from another shard (live reshard).

        ``seq_floor`` is the previous owner's accepted refresh seq
        high-water mark: installing it keeps the dedup guard monotone
        across the hand-off, so a duplicate of an old refresh replayed
        at the new owner is still rejected."""
        if seq_floor:
            self.last_seq[item] = max(self.last_seq.get(item, 0),
                                      int(seq_floor))
        self.core.adopt_item(item, float(value), source_id=source_id,
                             seq=int(seq_floor) if seq_floor else None)

    # -- connection handling -------------------------------------------------------

    async def handle_connection(self, stream: MessageStream) -> None:
        """Serve one peer until EOF or a protocol violation."""
        source_id: Optional[int] = None
        sub: Optional[_Subscriber] = None
        try:
            while True:
                message = await stream.receive()
                if message is None:
                    break
                try:
                    kind = protocol.validate_message(message)
                except ProtocolError as err:
                    self.stats["protocol_errors"] += 1
                    await self._safe_send(stream, protocol.error(str(err)))
                    break
                try:
                    if kind is MessageType.REGISTER_SOURCE:
                        source_id = await self._on_register_source(
                            stream, message)
                    elif kind is MessageType.REFRESH:
                        await self._on_refresh(stream, message)
                    elif kind is MessageType.HEARTBEAT:
                        await self._on_heartbeat(message)
                    elif kind is MessageType.DAB_ACK:
                        self._on_dab_ack(message)
                    elif kind is MessageType.QUERY_SUB:
                        sub = await self._on_query_sub(stream, message)
                    elif kind is MessageType.SNAPSHOT:
                        await self._safe_send(stream, self._snapshot_response())
                    else:
                        # NOTIFY/DAB_UPDATE are server-to-peer only; a peer
                        # sending them (or ERROR) ends the conversation.
                        self.stats["protocol_errors"] += 1
                        await self._safe_send(stream, protocol.error(
                            f"unexpected {kind.value} from a client"))
                        break
                except (ValueError, TypeError, KeyError,
                        ProtocolError) as err:
                    # validate_message shape-checks every known field, but
                    # a handler tripping over a hostile payload (or a
                    # conflicting QUERY_SUB definition) must still answer
                    # with a protocol error, not kill the task.
                    self.stats["protocol_errors"] += 1
                    await self._safe_send(stream, protocol.error(
                        f"malformed {kind.value} message: {err}"))
                    break
        except ProtocolError:
            self.stats["protocol_errors"] += 1
            await self._safe_send(stream, protocol.error("corrupt framing"))
        finally:
            stream.close()
            if source_id is not None and self._source_streams.get(source_id) is stream:
                del self._source_streams[source_id]
            if sub is not None:
                await self._drop_subscriber(sub)

    async def _safe_send(self, stream: MessageStream,
                         message: Dict[str, Any]) -> bool:
        try:
            await stream.send(message)
            return True
        except (TransportClosed, ProtocolError):
            return False

    # -- source-plane handlers ------------------------------------------------------

    async def _on_register_source(self, stream: MessageStream,
                                  message: Dict[str, Any]) -> int:
        """Adopt (or re-adopt) a source; programming its current DABs in
        the reply doubles as crash/reconnect resync."""
        source_id = int(message["source_id"])
        known = {name for name, owner in self.core.item_to_source.items()
                 if owner == source_id}
        unknown = [name for name in message["items"] if name not in known]
        if unknown:
            self.metrics.record_misrouted_bounds(len(unknown))
        previous = self._source_streams.get(source_id)
        if previous is not None and previous is not stream:
            previous.close()
        self._source_streams[source_id] = stream
        self.last_heard[source_id] = self.clock()
        self.stats["sources_registered"] += 1
        # The reply re-programs every current bound, superseding whatever
        # changed-bound deliveries were still being retried to this source.
        if self._outstanding_dabs:
            for msg_id in [m for m, entry in self._outstanding_dabs.items()
                           if entry["source_id"] == source_id]:
                del self._outstanding_dabs[msg_id]
        bounds, epochs = self.core.current_bounds_for(source_id)
        # The reply also carries our accepted-seq high-water marks: a
        # *restarted* source process numbers from 0 again, and without
        # this exchange every one of its refreshes would be rejected as a
        # stale duplicate until it climbed past the old incarnation's
        # numbering (resetting last_seq instead would let an in-flight
        # stale refresh from the dead connection clobber the cache).
        seqs = {name: self.last_seq[name] for name in known
                if name in self.last_seq}
        if await self._safe_send(stream,
                                 protocol.dab_update(source_id, bounds, epochs,
                                                     seqs=seqs or None)):
            self.stats["dab_updates_sent"] += 1
        return source_id

    async def _on_refresh(self, stream: MessageStream,
                          message: Dict[str, Any]) -> None:
        item = message["item"]
        frame_epoch = message.get("map_epoch")
        if self.map_epoch is not None and (frame_epoch or 0) < self.map_epoch:
            # Epoch fence: this frame was routed under an older shard
            # map.  Applying it could double-own an item mid-migration
            # (the new owner already has a fresher hand-off value), so
            # it is dropped — the router re-sends under the new map.
            self.stats["refreshes_rejected_stale_map_epoch"] += 1
            return
        if frame_epoch is not None:
            # A frame from the future means we missed a cutover
            # broadcast (e.g. restored from an old snapshot): converge.
            self.advance_map_epoch(frame_epoch)
        if item not in self.core.cache:
            self.metrics.record_misrouted_bounds()
            return
        seq = int(message["seq"])
        # Same dedup the simulator applies under faults — always on here:
        # TCP per connection is ordered, but a reconnecting source resends,
        # and nothing stops two connections racing for one source_id.
        if seq <= self.last_seq.get(item, 0):
            self.metrics.record_refresh()
            self.metrics.record_duplicate_reject()
            self.stats["refreshes_rejected_stale_seq"] += 1
            return
        self.last_seq[item] = seq
        now = self.clock()
        self.last_heard[int(message["source_id"])] = now
        if self.lease_duration is not None:
            self._hear_from_item(item, now)
            self._fanout_degraded_if_changed()
        self.core.apply_refresh(item, float(message["value"]), seq=seq)
        self.stats["refreshes_accepted"] += 1
        if message.get("resync"):
            self.core.clear_planner_warm_starts()
        notifications, recomputed = self.core.react_to_refresh(item)
        if recomputed:
            await self._fanout_bound_changes()
        if notifications:
            self._fanout_notifications(notifications,
                                       message.get("sent_at"))
        self._maybe_snapshot()

    async def _fanout_bound_changes(self) -> None:
        for source_id, (bounds, epochs) in self.core.changed_bound_updates().items():
            await self._send_dab_update(source_id, bounds, epochs)

    async def _send_dab_update(self, source_id: int,
                               bounds: Dict[str, float],
                               epochs: Dict[str, int],
                               attempt: int = 0,
                               msg_id: Optional[int] = None) -> None:
        """Ship one changed-bound DAB_UPDATE, reliably when configured.

        With a retry policy, the message carries a ``msg_id`` and sits in
        the outstanding table until the source's DAB_ACK lands —
        :meth:`check_retries` resends it with backoff otherwise.  A
        dropped *narrowing* update is the one loss the seq/lease
        machinery cannot see (the source keeps filtering against a
        stale, wider bound), so delivery has to be acknowledged.
        """
        policy = self.dab_retry_policy
        if policy is not None:
            if msg_id is None:
                self._dab_msg_counter += 1
                msg_id = self._dab_msg_counter
            self._outstanding_dabs[msg_id] = {
                "source_id": source_id, "bounds": bounds, "epochs": epochs,
                "attempt": attempt, "due": self.clock() + policy.delay(attempt),
            }
        stream = self._source_streams.get(source_id)
        if stream is None:
            # Disconnected source: the bounds stay in the core's
            # last-sent state and are re-programmed wholesale when the
            # source re-registers (the resync path); with a retry policy
            # the outstanding entry keeps nagging until then.
            return
        if await self._safe_send(stream,
                                 protocol.dab_update(source_id, bounds,
                                                     epochs, msg_id=msg_id)):
            self.stats["dab_updates_sent"] += 1

    def _on_dab_ack(self, message: Dict[str, Any]) -> None:
        self._outstanding_dabs.pop(int(message["msg_id"]), None)
        self.stats["dab_acks_received"] += 1

    async def check_retries(self) -> None:
        """Resend overdue unacked DAB_UPDATEs; give up into degradation.

        Exhausting the retry budget marks the affected items suspect —
        the coordinator can no longer claim the source enforces the
        bounds it was sent, so served answers widen honestly instead of
        silently trusting a filter that may not exist.
        """
        policy = self.dab_retry_policy
        if policy is None or not self._outstanding_dabs:
            return
        now = self.clock()
        for msg_id in list(self._outstanding_dabs):
            entry = self._outstanding_dabs.get(msg_id)
            if entry is None or entry["due"] > now:
                continue
            del self._outstanding_dabs[msg_id]
            attempt = entry["attempt"] + 1
            if attempt >= policy.max_attempts:
                self.metrics.record_dab_retry_exhausted()
                if self.lease_duration is not None:
                    for name in entry["bounds"]:
                        self.suspect_since.setdefault(name, now)
                    self._fanout_degraded_if_changed()
                continue
            self.metrics.record_dab_retry()
            await self._send_dab_update(entry["source_id"], entry["bounds"],
                                        entry["epochs"], attempt=attempt,
                                        msg_id=msg_id)

    # -- staleness leases -----------------------------------------------------------

    async def _on_heartbeat(self, message: Dict[str, Any]) -> None:
        """Renew leases for in-sync items; a seq gap means a refresh we
        never received — the item goes suspect and its value is probed
        (the source is demonstrably alive, so the reply is immediate)."""
        source_id = int(message["source_id"])
        now = self.clock()
        self.last_heard[source_id] = now
        self.stats["heartbeats_received"] += 1
        self.metrics.record_heartbeat()
        if self.lease_duration is None:
            return
        probes: List[str] = []
        behind: List[str] = []
        for name, seq in message["seqs"].items():
            if self.core.item_to_source.get(name) != source_id:
                continue
            held = self.last_seq.get(name, 0)
            if int(seq) == held:
                self._hear_from_item(name, now)
                continue
            if name not in self.suspect_since:
                self.suspect_since[name] = now
                self.stats["seq_gaps_detected"] += 1
                self.metrics.record_refresh_gap()
            if int(seq) > held:
                probes.append(name)
            else:
                # Numbering *behind* ours: a restarted source whose
                # registration reply (with the seq high-water marks) was
                # lost.  Its refreshes are being rejected as duplicates,
                # so a probe alone cannot cure it — re-floor its seqs.
                behind.append(name)
        if behind:
            bounds, epochs = self.core.current_bounds_for(source_id)
            await self._send_resync(source_id, behind, bounds, epochs)
        if probes:
            await self._send_probe(source_id, probes)
        self._fanout_degraded_if_changed()

    def _hear_from_item(self, name: str, now: float) -> None:
        """A refresh (or probe reply) vouched for ``name``: renew its
        lease, clear suspicion, close the staleness-exposure interval."""
        self._item_last_heard[name] = now
        since = self.suspect_since.pop(name, None)
        if since is not None:
            self.metrics.record_staleness_exposure(max(0.0, now - since))

    async def check_leases(self) -> None:
        """Expire leases on unheard-from items; probe and degrade.

        Driven by the maintenance task under TCP, or explicitly per step
        by the chaos soak.  First sweep baselines every item's lease at
        the current clock (a grace period, not an instant expiry)."""
        if self.lease_duration is None:
            return
        now = self.clock()
        probes_by_source: Dict[int, List[str]] = {}
        for name in self.core.cache:
            last = self._item_last_heard.setdefault(name, now)
            source_id = self.core.item_to_source.get(name)
            if name in self.suspect_since:
                # Keep probing until the value (or its resync) lands.
                if source_id is not None:
                    probes_by_source.setdefault(source_id, []).append(name)
                continue
            if now - last > self.lease_duration:
                self.suspect_since[name] = now
                self.metrics.record_lease_expiry()
                if source_id is not None:
                    probes_by_source.setdefault(source_id, []).append(name)
        for source_id, items in probes_by_source.items():
            await self._send_probe(source_id, items)
        self._fanout_degraded_if_changed()

    async def _send_probe(self, source_id: int, items: List[str]) -> None:
        """Ask a source to resend the listed items' current values now
        (an empty-bounds DAB_UPDATE carrying only ``probe``)."""
        stream = self._source_streams.get(source_id)
        if stream is None:
            return
        message = protocol.dab_update(source_id, {}, {}, probe=items)
        if await self._safe_send(stream, message):
            self.metrics.record_value_probe(len(items))

    async def _send_resync(self, source_id: int, items: List[str],
                           bounds: Dict[str, float],
                           epochs: Dict[str, int]) -> None:
        """A mini registration reply for ``items``: current bounds,
        epochs and seq floors, plus a probe so the re-numbered source
        answers with fresh values immediately."""
        stream = self._source_streams.get(source_id)
        if stream is None:
            return
        message = protocol.dab_update(
            source_id,
            {name: bounds[name] for name in items if name in bounds},
            {name: epochs[name] for name in items if name in epochs},
            seqs={name: self.last_seq[name] for name in items
                  if name in self.last_seq},
            probe=items)
        if await self._safe_send(stream, message):
            self.metrics.record_value_probe(len(items))

    def degraded_bounds(self) -> Dict[str, float]:
        """``{query name: honestly-widened bound}`` for every query with
        at least one suspect input — the PR 1 lease semantics, computed
        by :meth:`CoordinatorCore.uncertainty_widened_bound` with drifts
        that grow with each item's staleness."""
        if self.lease_duration is None or not self.suspect_since:
            return {}
        now = self.clock()
        cache = self.core.cache
        degraded: Dict[str, float] = {}
        for query in self.core.queries:
            drifts: Dict[str, float] = {}
            for name in query.variables:
                since = self.suspect_since.get(name)
                if since is None:
                    continue
                staleness = max(0.0, now - since)
                drifts[name] = (self.suspect_drift_rel
                                * max(abs(cache[name]), 1e-12)
                                * (1.0 + staleness / self.lease_duration))
            if drifts:
                degraded[query.name] = self.core.uncertainty_widened_bound(
                    query, drifts)
        return degraded

    def _fanout_degraded_if_changed(self) -> None:
        """When the set of degraded queries changes, push a bare NOTIFY
        carrying the authoritative ``degraded`` map to every subscriber —
        including the empty map that clears a recovered degradation."""
        if self.lease_duration is None:
            return
        affected = set()
        for name in self.suspect_since:
            for query in self.core.item_index.get(name, []):
                affected.add(query.name)
        keys = frozenset(affected)
        if keys == self._degraded_keys:
            return
        self._degraded_keys = keys
        degraded = self.degraded_bounds()
        for sub in list(self._subscribers.values()):
            message = protocol.notify(
                [], sent_at=self.clock(), shard=self.shard_id,
                map_epoch=self.map_epoch,
                degraded={name: bound for name, bound in degraded.items()
                          if sub.wants(name)})
            try:
                sub.queue.put_nowait(message)
            except asyncio.QueueFull:
                self._evict_slow_consumer(sub)

    # -- subscriber plane -----------------------------------------------------------

    def _register_definitions(self, definitions: List[Any]) -> Set[str]:
        """Register QUERY_SUB ``definitions`` incrementally; returns the
        names this subscriber now holds a reference on.

        Work is bounded per definition (template-sized, never O(bank)):
        duplicate detection is one dict probe, a brand-new query is an
        index *append* (``core.add_query``), and an exact re-registration
        of a live dynamic query just bumps its refcount.  A name collision
        with a structurally different query is a protocol error — raised
        before anything is registered, so a rejected message has no
        partial effect."""
        decoded = [protocol.query_from_wire(data) for data in definitions]
        staged: Dict[str, PolynomialQuery] = {}
        for query in decoded:
            existing = (self._query_objects.get(query.name)
                        or staged.get(query.name))
            if existing is not None and existing != query:
                raise ProtocolError(
                    f"query {query.name!r} is already registered with a "
                    "different definition")
            if existing is None:
                unknown = [v for v in query.variables
                           if v not in self.core.cache]
                if unknown:
                    raise ProtocolError(
                        f"query {query.name!r} references unknown items: "
                        f"{sorted(unknown)}")
                staged[query.name] = query
        registered: Set[str] = set()
        for query in decoded:
            if query.name in staged:
                self.core.add_query(query)
                self._query_objects[query.name] = query
                self._query_names.add(query.name)
                self._dynamic_refs[query.name] = 1
                registered.add(query.name)
                del staged[query.name]
            elif (query.name in self._dynamic_refs
                  and query.name not in registered):
                self._dynamic_refs[query.name] += 1
                registered.add(query.name)
        return registered

    def _release_dynamic(self, sub: _Subscriber) -> None:
        """Drop this subscriber's references; remove a dynamic query when
        the last reference goes (the core keeps it only if it is the very
        last query standing — a coordinator cannot run empty)."""
        for name in sub.registered:
            refs = self._dynamic_refs.get(name)
            if refs is None:
                continue
            if refs > 1:
                self._dynamic_refs[name] = refs - 1
                continue
            try:
                self.core.remove_query(name)
            except SimulationError:
                self._dynamic_refs[name] = 0
                continue
            del self._dynamic_refs[name]
            self._query_objects.pop(name, None)
            self._query_names.discard(name)
        sub.registered = set()

    async def _on_query_sub(self, stream: MessageStream,
                            message: Dict[str, Any]) -> _Subscriber:
        registered: Set[str] = set()
        definitions = message.get("definitions")
        if definitions:
            registered = self._register_definitions(definitions)
        wanted = message["queries"]
        if wanted == "*":
            names: Optional[Set[str]] = None
        else:
            names = {name for name in wanted if name in self._query_names}
            # Definitions are implicitly subscribed — naming them again
            # in ``queries`` would be redundant boilerplate.
            names |= {data["name"] for data in definitions or []}
        self._sub_counter += 1
        limit = (max(self.notify_queue_limit, TRUNK_QUEUE_LIMIT)
                 if message.get("trunk") else self.notify_queue_limit)
        sub = _Subscriber(self._sub_counter, stream, names, limit)
        sub.registered = registered
        self._subscribers[sub.sub_id] = sub
        self.stats["subscribers"] = len(self._subscribers)
        sub.writer_task = asyncio.ensure_future(self._subscriber_writer(sub))
        await self._safe_send(stream, self._snapshot_response(sub))
        return sub

    def _snapshot_response(self, sub: Optional[_Subscriber] = None
                           ) -> Dict[str, Any]:
        values = {query.name: value for query, value in
                  zip(self.core.queries, self.core.query_values())
                  if sub is None or sub.wants(query.name)}
        if self.lease_duration is not None:
            # Always present once leases are on (``{}`` = all healthy),
            # so a snapshot is an authoritative degraded-state read.
            degraded: Optional[Dict[str, float]] = {
                name: bound for name, bound in self.degraded_bounds().items()
                if sub is None or sub.wants(name)}
        else:
            degraded = None
        return protocol.snapshot(values=values, stats=self.server_stats(),
                                 degraded=degraded, shard=self.shard_id,
                                 map_epoch=self.map_epoch)

    def _fanout_notifications(self, notifications: List[Tuple[str, float]],
                              refresh_sent_at: Optional[float]) -> None:
        """One batched NOTIFY per interested subscriber, through its
        bounded queue; a full queue evicts the slow consumer."""
        now = self.clock()
        degraded = (self.degraded_bounds()
                    if self.lease_duration is not None and self.suspect_since
                    else None)
        for sub in list(self._subscribers.values()):
            updates = [{"query": name, "value": value}
                       for name, value in notifications if sub.wants(name)]
            if not updates:
                continue
            message = protocol.notify(
                updates, sent_at=now, refresh_sent_at=refresh_sent_at,
                shard=self.shard_id, map_epoch=self.map_epoch,
                degraded=None if degraded is None else
                {name: bound for name, bound in degraded.items()
                 if sub.wants(name)})
            try:
                sub.queue.put_nowait(message)
            except asyncio.QueueFull:
                self._evict_slow_consumer(sub)

    def _evict_slow_consumer(self, sub: _Subscriber) -> None:
        if sub.evicted:
            return
        sub.evicted = True
        self.stats["slow_consumer_evictions"] += 1
        self._subscribers.pop(sub.sub_id, None)
        self.stats["subscribers"] = len(self._subscribers)
        self._release_dynamic(sub)
        if sub.writer_task is not None:
            sub.writer_task.cancel()
        sub.stream.close()

    async def _drop_subscriber(self, sub: _Subscriber) -> None:
        self._subscribers.pop(sub.sub_id, None)
        self.stats["subscribers"] = len(self._subscribers)
        self._release_dynamic(sub)
        if sub.writer_task is not None and not sub.writer_task.done():
            try:
                sub.queue.put_nowait(None)     # graceful: flush, then stop
            except asyncio.QueueFull:
                # Exactly-full queue (eviction only fires on overflow):
                # no room for the sentinel, so drop the backlog instead.
                sub.writer_task.cancel()
            try:
                await asyncio.wait_for(sub.writer_task,
                                       timeout=self.writer_join_timeout)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                sub.writer_task.cancel()
        sub.stream.close()

    async def _subscriber_writer(self, sub: _Subscriber) -> None:
        """Drain one subscriber's queue onto its stream."""
        try:
            while True:
                message = await sub.queue.get()
                if message is None:
                    return
                await sub.stream.send(message)
                self.stats["notifies_sent"] += 1
        except (TransportClosed, ProtocolError):
            self._subscribers.pop(sub.sub_id, None)
            self.stats["subscribers"] = len(self._subscribers)
            sub.stream.close()
        except asyncio.CancelledError:
            raise

    # -- introspection ---------------------------------------------------------------

    def server_stats(self) -> Dict[str, Any]:
        stats = dict(self.stats)
        # Identity first: the cluster stats plane aggregates per-shard
        # sections keyed on these, so they are always present (``None``
        # for an unbound / single-node server).
        stats["shard_id"] = self.shard_id
        stats["listen_address"] = (list(self.listen_address)
                                   if self.listen_address is not None else None)
        stats["recomputations"] = self.metrics.recomputations
        stats["refreshes"] = self.metrics.refreshes
        stats["dab_change_messages"] = self.metrics.dab_change_messages
        stats["user_notifications"] = self.metrics.user_notifications
        stats["duplicate_rejects"] = self.metrics.duplicate_rejects
        stats["queries"] = len(self.core.queries)
        stats["items"] = len(self.core.cache)
        if self.map_epoch is not None:
            stats["map_epoch"] = self.map_epoch
        if self.lease_duration is not None:
            stats["suspect_items"] = len(self.suspect_since)
            stats["degraded_queries"] = len(self._degraded_keys)
            stats["lease_expiries"] = self.metrics.lease_expiries
            stats["refresh_gaps"] = self.metrics.refresh_gaps
            stats["value_probes"] = self.metrics.value_probes
            stats["staleness_exposure_seconds"] = (
                self.metrics.staleness_exposure_seconds)
        if self.dab_retry_policy is not None:
            stats["dab_retries"] = self.metrics.dab_retries
            stats["dab_retries_exhausted"] = self.metrics.dab_retry_exhausted
            stats["dab_updates_outstanding"] = len(self._outstanding_dabs)
        if self.solver_breaker is not None:
            stats["solver_breaker_state"] = self.solver_breaker.state.value
            stats["solver_breaker"] = dict(self.solver_breaker.stats)
        if self.journal is not None and self._journal_attached:
            stats["journal"] = self.journal.stats()
            if self.last_recovery is not None:
                stats["last_recovery"] = dict(self.last_recovery)
        from repro.filters.delta_recompute import find_delta_planner

        delta = find_delta_planner(self.core.planner)
        if delta is not None:
            stats["delta_recompute"] = delta.stats.snapshot()
        bank = self.core.bank_stats()
        if bank is not None:
            stats["bank_index"] = bank
            stats["bank_index"]["dynamic_queries"] = len(self._dynamic_refs)
        return stats


# ---------------------------------------------------------------------------
# scenario-driven construction (shared by `repro serve` and the loadgen)
# ---------------------------------------------------------------------------

def build_scenario_server(
    query_count: int = 10,
    item_count: int = 30,
    source_count: int = 8,
    trace_length: int = 301,
    seed: int = 0,
    algorithm: str = "dual_dab",
    recompute_cost: float = 5.0,
    workload: str = "portfolio",
    vectorize: bool = True,
    notify_queue_limit: int = DEFAULT_NOTIFY_QUEUE_LIMIT,
    recompute_mode: str = "full",
    bank_index: str = "flat",
    **server_kwargs: Any,
):
    """A :class:`CoordinatorServer` plus its scenario, built exactly like a
    simulator run: same workload generator, same rate estimation, same
    planner stack.  Returns ``(server, scenario, item_to_source)``.

    Extra keyword arguments (``lease_duration``, ``dab_retry_policy``,
    ``solver_breaker``, ``clock``, ...) pass straight through to the
    :class:`CoordinatorServer` constructor.

    ``repro serve`` and ``repro agent``/``repro loadgen`` must be launched
    with the same ``--queries/--items/--sources/--seed/--workload`` so both
    sides derive the same scenario; the server is authoritative for
    planning, the agents for the item traces.
    """
    # Imported here: these pull in repro.simulation, which imports
    # repro.service.core — keeping the heavy imports out of module scope
    # keeps the import graph acyclic from every entry point.
    from repro.simulation.harness import (
        AlgorithmName,
        SimulationConfig,
        _SINGLE_DAB_MODES,
        build_planner,
    )
    from repro.simulation.source import assign_items_to_sources
    from repro.workloads import scaled_scenario

    scenario = scaled_scenario(
        query_count=query_count, item_count=item_count,
        trace_length=trace_length, source_count=source_count,
        query_kind=workload, seed=seed,
    )
    config = SimulationConfig(
        queries=scenario.queries, traces=scenario.traces,
        algorithm=algorithm, recompute_cost=recompute_cost,
        source_count=source_count, seed=seed, vectorize=vectorize,
        recompute_mode=recompute_mode, bank_index=bank_index,
    )
    if config.algorithm is AlgorithmName.AAO_T:
        raise ReproError("the live service has no periodic scheduler yet; "
                         "pick a per-query algorithm")
    from repro.dynamics.estimation import SampledRateEstimator
    from repro.filters.caching import QuantisingCachePlanner
    from repro.filters.cost_model import CostModel

    items = config.used_items
    rates = SampledRateEstimator().estimate_all(config.traces, items)
    cost_model = CostModel(ddm=config.ddm, rates=rates,
                           recompute_cost=recompute_cost)
    planner = build_planner(config, cost_model)
    if config.cache_grid is not None:
        planner = QuantisingCachePlanner(planner, grid=config.cache_grid,
                                         bank_index_mode=bank_index)
    item_to_source = assign_items_to_sources(items, source_count)
    server = CoordinatorServer(
        queries=config.queries, planner=planner,
        initial_values=config.traces.initial_values(items),
        item_to_source=item_to_source,
        mode=_SINGLE_DAB_MODES[config.algorithm],
        vectorize=vectorize, recompute_cost=recompute_cost,
        notify_queue_limit=notify_queue_limit,
        recompute_strategy=recompute_mode,
        bank_index=bank_index,
        **server_kwargs,
    )
    return server, scenario, item_to_source
