"""The live coordinator: an asyncio server over :class:`CoordinatorCore`.

One :class:`CoordinatorServer` owns the same
:class:`~repro.service.core.CoordinatorCore` the simulator's coordinator
wraps — cache, compiled-query-bank evaluation, secondary-DAB window
checks, recomputation through the compiled-GP planner stack — and speaks
the framed protocol of :mod:`repro.service.protocol` to two kinds of
peers:

* **sources** (``REGISTER_SOURCE`` → ``REFRESH``/``HEARTBEAT`` in,
  ``DAB_UPDATE`` out).  Refreshes are deduplicated by per-item sequence
  number (a duplicate or overtaken refresh never clobbers the cache —
  the simulator's fault-mode semantics, always on here because real
  networks reorder), and registration doubles as resync: the reply
  programs the source's current primary DABs with their epochs and
  carries the accepted-seq high-water marks so a restarted source
  resumes numbering above the dedup guard instead of being muted by it.
* **subscribers** (``QUERY_SUB`` in, ``SNAPSHOT`` + batched ``NOTIFY``
  out).  Notifications are fanned out through a bounded per-connection
  queue drained by a writer task; a subscriber that stops reading long
  enough for its queue to fill is a *slow consumer* and is evicted
  rather than allowed to stall the coordinator or balloon its memory.

The server is single-event-loop by design: every message handler runs on
the loop thread, so core state needs no locks — exactly the
single-coordinator model of the paper (§II).
"""

from __future__ import annotations

import asyncio
import time as _time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import ReproError
from repro.queries.polynomial import PolynomialQuery
from repro.service import protocol
from repro.service.core import CoordinatorCore, RecomputeMode
from repro.service.protocol import MessageType, ProtocolError
from repro.service.transports import MessageStream, TransportClosed, loopback_pair
from repro.simulation.metrics import MetricsCollector

#: NOTIFY batches a subscriber may have outstanding before it is evicted.
DEFAULT_NOTIFY_QUEUE_LIMIT = 64


class _Subscriber:
    """One QUERY_SUB connection and its bounded outbound queue."""

    def __init__(self, sub_id: int, stream: MessageStream,
                 queries: Optional[Set[str]], limit: int):
        self.sub_id = sub_id
        self.stream = stream
        #: ``None`` subscribes to every query.
        self.queries = queries
        self.queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = (
            asyncio.Queue(maxsize=limit))
        self.writer_task: Optional[asyncio.Task] = None
        self.evicted = False

    def wants(self, query_name: str) -> bool:
        return self.queries is None or query_name in self.queries


class CoordinatorServer:
    """Serve continuous polynomial queries over live refresh streams."""

    def __init__(
        self,
        queries: Sequence[PolynomialQuery],
        planner: object,
        initial_values: Mapping[str, float],
        item_to_source: Mapping[str, int],
        mode: RecomputeMode = RecomputeMode.ON_WINDOW_VIOLATION,
        aao_planner: Optional[object] = None,
        aao_period: Optional[int] = None,
        vectorize: bool = True,
        recompute_cost: float = 1.0,
        metrics: Optional[MetricsCollector] = None,
        notify_queue_limit: int = DEFAULT_NOTIFY_QUEUE_LIMIT,
    ):
        self.metrics = metrics if metrics is not None else MetricsCollector(
            recompute_cost=recompute_cost)
        self.core = CoordinatorCore(
            queries=queries, planner=planner, mode=mode, metrics=self.metrics,
            initial_values=initial_values, item_to_source=item_to_source,
            aao_planner=aao_planner, aao_period=aao_period,
            vectorize=vectorize,
        )
        self.core.bootstrap()
        self.notify_queue_limit = int(notify_queue_limit)
        self._query_names = {query.name for query in self.core.queries}

        #: source_id -> its (sole) live stream; replaced on re-register.
        self._source_streams: Dict[int, MessageStream] = {}
        self._subscribers: Dict[int, _Subscriber] = {}
        self._sub_counter = 0
        #: item -> highest refresh sequence number accepted (dedup guard).
        self.last_seq: Dict[str, int] = {}
        #: source_id -> wall-clock time of the last refresh/heartbeat.
        self.last_heard: Dict[int, float] = {}
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._handler_tasks: Set[asyncio.Task] = set()
        self.stats = {
            "refreshes_accepted": 0,
            "refreshes_rejected_stale_seq": 0,
            "notifies_sent": 0,
            "dab_updates_sent": 0,
            "slow_consumer_evictions": 0,
            "protocol_errors": 0,
            "sources_registered": 0,
            "subscribers": 0,
        }

    # -- lifecycle ---------------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> Tuple[str, int]:
        """Start accepting TCP connections; returns the bound address."""
        async def _accept(reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
            peer = writer.get_extra_info("peername")
            stream = MessageStream(reader, writer, name=str(peer))
            await self.handle_connection(stream)

        self._tcp_server = await asyncio.start_server(_accept, host, port)
        sockname = self._tcp_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def connect_loopback(self) -> MessageStream:
        """A client-end stream connected in process (no sockets) — the
        transport the CI suite and the in-process loadgen run on."""
        client_end, server_end = loopback_pair()
        task = asyncio.ensure_future(self.handle_connection(server_end))
        self._handler_tasks.add(task)
        task.add_done_callback(self._handler_tasks.discard)
        return client_end

    async def close(self) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for subscriber in list(self._subscribers.values()):
            await self._drop_subscriber(subscriber)
        for stream in list(self._source_streams.values()):
            stream.close()
        self._source_streams.clear()
        for task in list(self._handler_tasks):
            task.cancel()
        for task in list(self._handler_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    # -- connection handling -------------------------------------------------------

    async def handle_connection(self, stream: MessageStream) -> None:
        """Serve one peer until EOF or a protocol violation."""
        source_id: Optional[int] = None
        sub: Optional[_Subscriber] = None
        try:
            while True:
                message = await stream.receive()
                if message is None:
                    break
                try:
                    kind = protocol.validate_message(message)
                except ProtocolError as err:
                    self.stats["protocol_errors"] += 1
                    await self._safe_send(stream, protocol.error(str(err)))
                    break
                try:
                    if kind is MessageType.REGISTER_SOURCE:
                        source_id = await self._on_register_source(
                            stream, message)
                    elif kind is MessageType.REFRESH:
                        await self._on_refresh(stream, message)
                    elif kind is MessageType.HEARTBEAT:
                        self.last_heard[int(message["source_id"])] = _time.time()
                    elif kind is MessageType.QUERY_SUB:
                        sub = await self._on_query_sub(stream, message)
                    elif kind is MessageType.SNAPSHOT:
                        await self._safe_send(stream, self._snapshot_response())
                    else:
                        # NOTIFY/DAB_UPDATE are server-to-peer only; a peer
                        # sending them (or ERROR) ends the conversation.
                        self.stats["protocol_errors"] += 1
                        await self._safe_send(stream, protocol.error(
                            f"unexpected {kind.value} from a client"))
                        break
                except (ValueError, TypeError, KeyError) as err:
                    # validate_message shape-checks every known field, but
                    # a handler tripping over a hostile payload must still
                    # answer with a protocol error, not kill the task.
                    self.stats["protocol_errors"] += 1
                    await self._safe_send(stream, protocol.error(
                        f"malformed {kind.value} message: {err}"))
                    break
        except ProtocolError:
            self.stats["protocol_errors"] += 1
            await self._safe_send(stream, protocol.error("corrupt framing"))
        finally:
            stream.close()
            if source_id is not None and self._source_streams.get(source_id) is stream:
                del self._source_streams[source_id]
            if sub is not None:
                await self._drop_subscriber(sub)

    async def _safe_send(self, stream: MessageStream,
                         message: Dict[str, Any]) -> bool:
        try:
            await stream.send(message)
            return True
        except (TransportClosed, ProtocolError):
            return False

    # -- source-plane handlers ------------------------------------------------------

    async def _on_register_source(self, stream: MessageStream,
                                  message: Dict[str, Any]) -> int:
        """Adopt (or re-adopt) a source; programming its current DABs in
        the reply doubles as crash/reconnect resync."""
        source_id = int(message["source_id"])
        known = {name for name, owner in self.core.item_to_source.items()
                 if owner == source_id}
        unknown = [name for name in message["items"] if name not in known]
        if unknown:
            self.metrics.record_misrouted_bounds(len(unknown))
        previous = self._source_streams.get(source_id)
        if previous is not None and previous is not stream:
            previous.close()
        self._source_streams[source_id] = stream
        self.last_heard[source_id] = _time.time()
        self.stats["sources_registered"] += 1
        bounds, epochs = self.core.current_bounds_for(source_id)
        # The reply also carries our accepted-seq high-water marks: a
        # *restarted* source process numbers from 0 again, and without
        # this exchange every one of its refreshes would be rejected as a
        # stale duplicate until it climbed past the old incarnation's
        # numbering (resetting last_seq instead would let an in-flight
        # stale refresh from the dead connection clobber the cache).
        seqs = {name: self.last_seq[name] for name in known
                if name in self.last_seq}
        if await self._safe_send(stream,
                                 protocol.dab_update(source_id, bounds, epochs,
                                                     seqs=seqs or None)):
            self.stats["dab_updates_sent"] += 1
        return source_id

    async def _on_refresh(self, stream: MessageStream,
                          message: Dict[str, Any]) -> None:
        item = message["item"]
        if item not in self.core.cache:
            self.metrics.record_misrouted_bounds()
            return
        seq = int(message["seq"])
        # Same dedup the simulator applies under faults — always on here:
        # TCP per connection is ordered, but a reconnecting source resends,
        # and nothing stops two connections racing for one source_id.
        if seq <= self.last_seq.get(item, 0):
            self.metrics.record_refresh()
            self.metrics.record_duplicate_reject()
            self.stats["refreshes_rejected_stale_seq"] += 1
            return
        self.last_seq[item] = seq
        self.last_heard[int(message["source_id"])] = _time.time()
        self.core.apply_refresh(item, float(message["value"]))
        self.stats["refreshes_accepted"] += 1
        if message.get("resync"):
            self.core.clear_planner_warm_starts()
        notifications, recomputed = self.core.react_to_refresh(item)
        if recomputed:
            await self._fanout_bound_changes()
        if notifications:
            self._fanout_notifications(notifications,
                                       message.get("sent_at"))

    async def _fanout_bound_changes(self) -> None:
        for source_id, (bounds, epochs) in self.core.changed_bound_updates().items():
            stream = self._source_streams.get(source_id)
            if stream is None:
                # Disconnected source: the bounds stay in the core's
                # last-sent state and are re-programmed wholesale when the
                # source re-registers (the resync path).
                continue
            if await self._safe_send(stream,
                                     protocol.dab_update(source_id, bounds,
                                                         epochs)):
                self.stats["dab_updates_sent"] += 1

    # -- subscriber plane -----------------------------------------------------------

    async def _on_query_sub(self, stream: MessageStream,
                            message: Dict[str, Any]) -> _Subscriber:
        wanted = message["queries"]
        if wanted == "*":
            names: Optional[Set[str]] = None
        else:
            names = {name for name in wanted if name in self._query_names}
        self._sub_counter += 1
        sub = _Subscriber(self._sub_counter, stream, names,
                          self.notify_queue_limit)
        self._subscribers[sub.sub_id] = sub
        self.stats["subscribers"] = len(self._subscribers)
        sub.writer_task = asyncio.ensure_future(self._subscriber_writer(sub))
        await self._safe_send(stream, self._snapshot_response(sub))
        return sub

    def _snapshot_response(self, sub: Optional[_Subscriber] = None
                           ) -> Dict[str, Any]:
        values = {query.name: value for query, value in
                  zip(self.core.queries, self.core.query_values())
                  if sub is None or sub.wants(query.name)}
        return protocol.snapshot(values=values, stats=self.server_stats())

    def _fanout_notifications(self, notifications: List[Tuple[str, float]],
                              refresh_sent_at: Optional[float]) -> None:
        """One batched NOTIFY per interested subscriber, through its
        bounded queue; a full queue evicts the slow consumer."""
        now = _time.time()
        for sub in list(self._subscribers.values()):
            updates = [{"query": name, "value": value}
                       for name, value in notifications if sub.wants(name)]
            if not updates:
                continue
            message = protocol.notify(updates, sent_at=now,
                                      refresh_sent_at=refresh_sent_at)
            try:
                sub.queue.put_nowait(message)
            except asyncio.QueueFull:
                self._evict_slow_consumer(sub)

    def _evict_slow_consumer(self, sub: _Subscriber) -> None:
        if sub.evicted:
            return
        sub.evicted = True
        self.stats["slow_consumer_evictions"] += 1
        self._subscribers.pop(sub.sub_id, None)
        self.stats["subscribers"] = len(self._subscribers)
        if sub.writer_task is not None:
            sub.writer_task.cancel()
        sub.stream.close()

    async def _drop_subscriber(self, sub: _Subscriber) -> None:
        self._subscribers.pop(sub.sub_id, None)
        self.stats["subscribers"] = len(self._subscribers)
        if sub.writer_task is not None and not sub.writer_task.done():
            try:
                sub.queue.put_nowait(None)     # graceful: flush, then stop
            except asyncio.QueueFull:
                # Exactly-full queue (eviction only fires on overflow):
                # no room for the sentinel, so drop the backlog instead.
                sub.writer_task.cancel()
            try:
                await asyncio.wait_for(sub.writer_task, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                sub.writer_task.cancel()
        sub.stream.close()

    async def _subscriber_writer(self, sub: _Subscriber) -> None:
        """Drain one subscriber's queue onto its stream."""
        try:
            while True:
                message = await sub.queue.get()
                if message is None:
                    return
                await sub.stream.send(message)
                self.stats["notifies_sent"] += 1
        except (TransportClosed, ProtocolError):
            self._subscribers.pop(sub.sub_id, None)
            self.stats["subscribers"] = len(self._subscribers)
            sub.stream.close()
        except asyncio.CancelledError:
            raise

    # -- introspection ---------------------------------------------------------------

    def server_stats(self) -> Dict[str, Any]:
        stats = dict(self.stats)
        stats["recomputations"] = self.metrics.recomputations
        stats["refreshes"] = self.metrics.refreshes
        stats["dab_change_messages"] = self.metrics.dab_change_messages
        stats["user_notifications"] = self.metrics.user_notifications
        stats["duplicate_rejects"] = self.metrics.duplicate_rejects
        stats["queries"] = len(self.core.queries)
        stats["items"] = len(self.core.cache)
        return stats


# ---------------------------------------------------------------------------
# scenario-driven construction (shared by `repro serve` and the loadgen)
# ---------------------------------------------------------------------------

def build_scenario_server(
    query_count: int = 10,
    item_count: int = 30,
    source_count: int = 8,
    trace_length: int = 301,
    seed: int = 0,
    algorithm: str = "dual_dab",
    recompute_cost: float = 5.0,
    workload: str = "portfolio",
    vectorize: bool = True,
    notify_queue_limit: int = DEFAULT_NOTIFY_QUEUE_LIMIT,
):
    """A :class:`CoordinatorServer` plus its scenario, built exactly like a
    simulator run: same workload generator, same rate estimation, same
    planner stack.  Returns ``(server, scenario, item_to_source)``.

    ``repro serve`` and ``repro agent``/``repro loadgen`` must be launched
    with the same ``--queries/--items/--sources/--seed/--workload`` so both
    sides derive the same scenario; the server is authoritative for
    planning, the agents for the item traces.
    """
    # Imported here: these pull in repro.simulation, which imports
    # repro.service.core — keeping the heavy imports out of module scope
    # keeps the import graph acyclic from every entry point.
    from repro.simulation.harness import (
        AlgorithmName,
        SimulationConfig,
        _SINGLE_DAB_MODES,
        build_planner,
    )
    from repro.simulation.source import assign_items_to_sources
    from repro.workloads import scaled_scenario

    scenario = scaled_scenario(
        query_count=query_count, item_count=item_count,
        trace_length=trace_length, source_count=source_count,
        query_kind=workload, seed=seed,
    )
    config = SimulationConfig(
        queries=scenario.queries, traces=scenario.traces,
        algorithm=algorithm, recompute_cost=recompute_cost,
        source_count=source_count, seed=seed, vectorize=vectorize,
    )
    if config.algorithm is AlgorithmName.AAO_T:
        raise ReproError("the live service has no periodic scheduler yet; "
                         "pick a per-query algorithm")
    from repro.dynamics.estimation import SampledRateEstimator
    from repro.filters.caching import QuantisingCachePlanner
    from repro.filters.cost_model import CostModel

    items = config.used_items
    rates = SampledRateEstimator().estimate_all(config.traces, items)
    cost_model = CostModel(ddm=config.ddm, rates=rates,
                           recompute_cost=recompute_cost)
    planner = build_planner(config, cost_model)
    if config.cache_grid is not None:
        planner = QuantisingCachePlanner(planner, grid=config.cache_grid)
    item_to_source = assign_items_to_sources(items, source_count)
    server = CoordinatorServer(
        queries=config.queries, planner=planner,
        initial_values=config.traces.initial_values(items),
        item_to_source=item_to_source,
        mode=_SINGLE_DAB_MODES[config.algorithm],
        vectorize=vectorize, recompute_cost=recompute_cost,
        notify_queue_limit=notify_queue_limit,
    )
    return server, scenario, item_to_source
