"""Wire-level fault injection for the live service.

The simulator's :mod:`repro.simulation.faults` decides the fate of
*events*; this module applies the same vocabulary — seeded per-link RNG
substreams, loss, duplication, partitions, crash windows — to *frames*:
real :class:`~repro.service.protocol.FrameDecoder` bytes flowing through
a real transport.  A :class:`ChaosWriter` wraps the writer half of any
stream (the loopback ``_MemoryPipe`` or asyncio's ``StreamWriter``), and
because :class:`~repro.service.transports.MessageStream` issues exactly
one ``write()`` per frame, every fault decision lands on a whole-frame
boundary:

* **drop** — the frame silently vanishes;
* **duplicate** — the frame is written twice (the peer's seq/epoch
  dedup must absorb it);
* **corrupt** — the first body byte is XOR-flipped to an invalid UTF-8
  continuation byte, so the peer's decoder *always* detects the damage,
  poisons itself, and the connection must be torn down (the only safe
  recovery from corrupt framing);
* **delay** — the frame is held and released, in order, when the
  injector's logical clock advances past its release step;
* **forced disconnect** — the underlying writer is closed (EOF at the
  peer) and ``ConnectionError`` is raised at the sender, exactly like a
  mid-write RST;
* **partition** — every frame sent inside a
  :class:`~repro.simulation.faults.PartitionWindow` is dropped, on every
  chaos-wrapped link.

Determinism: each link draws from its own generator derived from
``(seed, crc32(link))`` — the same substream scheme as
:class:`~repro.simulation.faults.FaultModel` — and decisions depend only
on the per-link frame order, never on cross-link interleaving or wall
time.  Every fired fault is appended to :attr:`FaultInjector.trace`, and
:meth:`FaultInjector.digest` hashes the trace so two runs can be
compared byte-for-byte.

A schedule with no fault channel enabled is a guaranteed no-op:
:func:`chaos_stream` returns the stream untouched and no RNG is created.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.service.transports import MessageStream, loopback_pair
from repro.simulation.faults import CrashWindow, PartitionWindow


@dataclass(frozen=True)
class FaultSchedule:
    """A declarative, seeded description of what to break, in step time.

    Rates are per-frame i.i.d. probabilities; windows are
    ``[start, end)`` intervals on the injector's logical step clock.
    ``loss_windows`` (when given) confine ``drop_rate`` to those
    intervals so a soak can audit in provably-clean windows; an empty
    tuple means the rate applies at every step.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_steps: int = 2
    disconnect_rate: float = 0.0
    loss_windows: Tuple[PartitionWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    crash_windows: Tuple[CrashWindow, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for knob in ("drop_rate", "duplicate_rate", "corrupt_rate",
                     "delay_rate", "disconnect_rate"):
            rate = getattr(self, knob)
            if not (0.0 <= rate < 1.0):
                raise SimulationError(f"{knob} must be in [0, 1), got {rate!r}")
        if self.delay_steps < 1:
            raise SimulationError("delay_steps must be >= 1")
        object.__setattr__(self, "loss_windows", tuple(self.loss_windows))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crash_windows", tuple(self.crash_windows))

    @property
    def enabled(self) -> bool:
        """True when any fault channel can fire."""
        return bool(
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.corrupt_rate > 0.0
            or self.delay_rate > 0.0
            or self.disconnect_rate > 0.0
            or self.partitions
            or self.crash_windows
        )

    def fault_kinds(self) -> List[str]:
        """The distinct fault types this schedule can fire (for reports)."""
        kinds = []
        if self.drop_rate > 0.0:
            kinds.append("drop")
        if self.duplicate_rate > 0.0:
            kinds.append("duplicate")
        if self.corrupt_rate > 0.0:
            kinds.append("corrupt")
        if self.delay_rate > 0.0:
            kinds.append("delay")
        if self.disconnect_rate > 0.0:
            kinds.append("disconnect")
        if self.partitions:
            kinds.append("partition")
        if self.crash_windows:
            kinds.append("agent_crash")
        return kinds


class FaultInjector:
    """Seeded fault decisions over a logical step clock, with a trace.

    The soak loop calls :meth:`advance` once per step; chaos writers ask
    :meth:`decide` once per frame.  Everything that fires is recorded in
    :attr:`trace` as ``(step, link, kind, frame_no)`` tuples — the
    deterministic artifact :meth:`digest` hashes.
    """

    def __init__(self, schedule: Optional[FaultSchedule] = None):
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.enabled = self.schedule.enabled
        self.now = 0
        self.trace: List[Tuple[int, str, str, int]] = []
        self._streams: Dict[str, np.random.Generator] = {}
        self._frame_no: Dict[str, int] = {}
        self._writers: List["ChaosWriter"] = []
        self.counts: Dict[str, int] = {}

    # -- RNG plumbing (same substream scheme as simulation.faults) -------------

    def _rng(self, link: str) -> np.random.Generator:
        rng = self._streams.get(link)
        if rng is None:
            sub = zlib.crc32(link.encode("utf-8"))
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(self.schedule.seed, sub)))
            self._streams[link] = rng
        return rng

    def _record(self, link: str, kind: str, frame_no: int) -> None:
        self.trace.append((self.now, link, kind, frame_no))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    # -- clock -----------------------------------------------------------------

    def advance(self, step: int) -> None:
        """Move the logical clock to ``step`` and release due delayed
        frames (in writer-registration, then hold, order)."""
        self.now = int(step)
        for writer in self._writers:
            writer.flush_due(self.now)

    # -- per-frame decisions -----------------------------------------------------

    def _loss_active(self) -> bool:
        if self.schedule.drop_rate <= 0.0:
            return False
        windows = self.schedule.loss_windows
        if not windows:
            return True
        return any(w.covers(self.now) for w in windows)

    def decide(self, link: str) -> Dict[str, Any]:
        """The fate of the next frame on ``link``.

        Draw order is fixed (drop, corrupt, duplicate, delay, disconnect)
        and each channel draws only when its rate is non-zero, so a
        schedule exercising fewer channels still replays the same
        decisions for the ones it shares.
        """
        frame_no = self._frame_no.get(link, 0) + 1
        self._frame_no[link] = frame_no
        fate: Dict[str, Any] = {}
        if not self.enabled:
            return fate
        schedule = self.schedule
        if any(w.covers(self.now) for w in schedule.partitions):
            self._record(link, "partition_drop", frame_no)
            fate["drop"] = True
            return fate
        rng = self._rng(link)
        if schedule.drop_rate > 0.0 and rng.random() < schedule.drop_rate:
            if self._loss_active():
                self._record(link, "drop", frame_no)
                fate["drop"] = True
                return fate
        if schedule.corrupt_rate > 0.0 and rng.random() < schedule.corrupt_rate:
            self._record(link, "corrupt", frame_no)
            fate["corrupt"] = True
        if (schedule.duplicate_rate > 0.0
                and rng.random() < schedule.duplicate_rate):
            self._record(link, "duplicate", frame_no)
            fate["duplicate"] = True
        if schedule.delay_rate > 0.0 and rng.random() < schedule.delay_rate:
            self._record(link, "delay", frame_no)
            fate["delay_until"] = self.now + schedule.delay_steps
        if (schedule.disconnect_rate > 0.0
                and rng.random() < schedule.disconnect_rate):
            self._record(link, "disconnect", frame_no)
            fate["disconnect"] = True
        return fate

    # -- node-level state ---------------------------------------------------------

    def is_crashed(self, source_id: int, step: int) -> bool:
        return any(w.source_id == source_id and w.covers(step)
                   for w in self.schedule.crash_windows)

    # -- artifacts ---------------------------------------------------------------

    def trace_rows(self) -> List[Dict[str, Any]]:
        return [{"step": s, "link": link, "fault": kind, "frame": n}
                for s, link, kind, n in self.trace]

    def digest(self) -> str:
        """A stable hash of the fault trace (same seed ⇒ same digest)."""
        payload = json.dumps(self.trace, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _corrupt(frame: bytes) -> bytes:
    """Flip the first body byte to an invalid UTF-8 continuation byte.

    The length header is left intact so the peer buffers the full frame,
    then fails to decode it — corruption is always *detected* (decoder
    poisoned, connection torn down), never a silent value change that
    would fake a QAB violation.
    """
    from repro.service.protocol import HEADER_BYTES

    if len(frame) <= HEADER_BYTES:
        return frame
    mutated = bytearray(frame)
    mutated[HEADER_BYTES] ^= 0xFF
    return bytes(mutated)


class ChaosWriter:
    """A writer wrapper applying one link's fault decisions per frame."""

    def __init__(self, inner: Any, injector: FaultInjector, link: str):
        self.inner = inner
        self.injector = injector
        self.link = link
        self._held: List[Tuple[int, bytes]] = []
        self._closed = False
        injector._writers.append(self)

    def write(self, data: bytes) -> None:
        fate = self.injector.decide(self.link)
        if fate.get("drop"):
            return
        if fate.get("disconnect"):
            # Sever the link for real: EOF at the peer, error at the
            # sender (MessageStream converts it to TransportClosed).
            self.close()
            raise ConnectionError(f"chaos: forced disconnect on {self.link}")
        if fate.get("corrupt"):
            data = _corrupt(data)
        release = fate.get("delay_until")
        if release is not None:
            self._held.append((int(release), bytes(data)))
            return
        self.inner.write(data)
        if fate.get("duplicate"):
            self.inner.write(data)

    def flush_due(self, now: int) -> None:
        if self._closed or not self._held:
            return
        due = [frame for release, frame in self._held if release <= now]
        self._held = [(release, frame) for release, frame in self._held
                      if release > now]
        for frame in due:
            try:
                self.inner.write(frame)
            except Exception:
                # The link died while frames were in flight: they are lost,
                # like any packet on a dead path.
                self._held = []
                return

    async def drain(self) -> None:
        await self.inner.drain()

    def close(self) -> None:
        self._closed = True
        self._held = []
        try:
            self.inner.close()
        except (ConnectionError, RuntimeError):
            pass


def chaos_stream(stream: MessageStream, injector: FaultInjector,
                 link: str) -> MessageStream:
    """Route ``stream``'s outbound frames through a :class:`ChaosWriter`.

    Works on any :class:`MessageStream` — loopback or TCP — because the
    fault surface is the writer contract, not the transport.  With a
    disabled schedule the stream is returned untouched (the no-op
    guarantee).
    """
    if not injector.enabled:
        return stream
    stream._writer = ChaosWriter(stream._writer, injector, link)
    return stream


def chaos_loopback_pair(injector: FaultInjector, peer: str,
                        ) -> Tuple[MessageStream, MessageStream]:
    """A loopback pair whose two directions are chaos-wrapped links
    ``"<peer>->coord"`` and ``"coord-><peer>"``."""
    client_end, server_end = loopback_pair()
    chaos_stream(client_end, injector, f"{peer}->coord")
    chaos_stream(server_end, injector, f"coord->{peer}")
    return client_end, server_end
