"""Byte-stream plumbing under the wire protocol.

:class:`MessageStream` frames/deframes protocol messages over any pair of
reader/writer objects with the tiny surface below — satisfied both by
asyncio's ``StreamReader``/``StreamWriter`` (real TCP) and by
:class:`_MemoryPipe` (the in-process loopback transport the test suite and
the in-process loadgen run on, no sockets involved):

* reader: ``async read(n) -> bytes`` (``b""`` at EOF)
* writer: ``write(data)``, ``async drain()``, ``close()``

The loopback pipe is a real transport in every sense that matters to the
protocol code — messages are *serialized to bytes* and re-parsed through
the same :class:`~repro.service.protocol.FrameDecoder` as TCP traffic, so
framing bugs cannot hide behind an object-passing shortcut.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.service import protocol
from repro.service.protocol import FrameDecoder, ProtocolError, encode_frame

_READ_CHUNK = 65536


class TransportClosed(ProtocolError):
    """The peer closed (or the pipe broke) mid-conversation."""


class _MemoryPipe:
    """One direction of an in-process byte stream (loopback transport).

    Chunks written on one end come out of ``read`` on the other, through
    an ``asyncio.Queue`` — bytes in, bytes out, no parsing shortcuts.
    """

    def __init__(self) -> None:
        self._chunks: asyncio.Queue = asyncio.Queue()
        self._eof = False
        self._leftover = b""

    # -- writer side -------------------------------------------------------------

    def write(self, data: bytes) -> None:
        if self._eof:
            raise TransportClosed("write on a closed loopback pipe")
        if data:
            self._chunks.put_nowait(bytes(data))

    async def drain(self) -> None:
        return None

    def close(self) -> None:
        if not self._eof:
            self._eof = True
            self._chunks.put_nowait(b"")   # wake any blocked reader

    # -- reader side -------------------------------------------------------------

    async def read(self, n: int = -1) -> bytes:
        if self._leftover:
            data, self._leftover = self._leftover, b""
        else:
            if self._eof and self._chunks.empty():
                return b""
            data = await self._chunks.get()
            if data == b"":
                # EOF sentinel; re-queue it so later reads see EOF too.
                self._eof = True
                self._chunks.put_nowait(b"")
                return b""
        if 0 <= n < len(data):
            self._leftover = data[n:]
            data = data[:n]
        return data


class MessageStream:
    """Protocol messages over a reader/writer pair."""

    def __init__(self, reader: Any, writer: Any,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
                 name: str = "peer"):
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame_bytes)
        self._pending: list = []
        self._closed = False
        self.name = name

    # -- sending -----------------------------------------------------------------

    async def send(self, message: Dict[str, Any]) -> None:
        if self._closed:
            raise TransportClosed(f"send on closed stream to {self.name}")
        frame = encode_frame(message, self._decoder.max_frame_bytes)
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except (ConnectionError, RuntimeError, TransportClosed) as err:
            self._closed = True
            raise TransportClosed(f"peer {self.name} went away: {err}")

    # -- receiving ---------------------------------------------------------------

    async def receive(self) -> Optional[Dict[str, Any]]:
        """The next message, or ``None`` on a clean EOF.

        Raises :class:`ProtocolError` on corrupt framing (the caller
        should close the connection)."""
        while not self._pending:
            try:
                chunk = await self._reader.read(_READ_CHUNK)
            except ConnectionError:
                return None
            if not chunk:
                return None
            self._pending.extend(self._decoder.feed(chunk))
        return self._pending.pop(0)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        try:
            self._writer.close()
        except (ConnectionError, RuntimeError):
            pass

    @property
    def closed(self) -> bool:
        return self._closed


def loopback_pair(max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
                  ) -> Tuple[MessageStream, MessageStream]:
    """Two connected in-process message streams (client end, server end)."""
    client_to_server = _MemoryPipe()
    server_to_client = _MemoryPipe()
    client = _LoopbackStream(reader=server_to_client, writer=client_to_server,
                             max_frame_bytes=max_frame_bytes, name="server")
    server = _LoopbackStream(reader=client_to_server, writer=server_to_client,
                             max_frame_bytes=max_frame_bytes, name="client")
    return client, server


class _LoopbackStream(MessageStream):
    """A MessageStream whose close() also EOFs its own reader, so a
    handler blocked in receive() wakes when *either* side hangs up."""

    def close(self) -> None:
        super().close()
        try:
            self._reader.close()
        except AttributeError:
            pass


async def open_tcp_stream(host: str, port: int,
                          max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
                          ) -> MessageStream:
    """Connect to a live coordinator over TCP."""
    reader, writer = await asyncio.open_connection(host, port)
    return MessageStream(reader, writer, max_frame_bytes,
                         name=f"{host}:{port}")
