"""The live source: trace replay (or programmatic ticks) behind a DAB filter.

A :class:`SourceAgent` is the deployed counterpart of the simulator's
``SourceNode``: it owns a set of items, watches their values change, and
pushes a ``REFRESH`` upstream only when a value escapes the primary DAB
window the coordinator programmed — the paper's source-side filtering,
which is where all the bandwidth savings come from.

Semantics carried over from the simulator (and its fault suite):

* **per-item monotone DAB epochs** — a ``DAB_UPDATE`` is applied per item
  only if its epoch is newer than the one held, so duplicated or
  reordered bound messages are idempotent (``SourceNode.set_bounds``);
* **per-item refresh seq numbers** — every refresh carries a
  monotonically increasing ``seq`` so the coordinator can reject
  duplicates and detect gaps from heartbeats;
* **reconnect-with-resync** — after a connection drop the agent
  re-registers, the coordinator re-programs its current bounds (and its
  accepted-seq high-water marks) in the registration reply, and the agent
  *force-resends* every item's current value on its next tick with
  ``resync=True`` — unconditionally, not just on a DAB violation, because
  a refresh whose send failed has already recentred ``sent_values`` and
  would otherwise never be retried (the coordinator would keep serving
  the stale value forever).

The agent is transport-agnostic: ``run`` drives a real TCP connection,
``run_on_stream`` drives any :class:`MessageStream` (loopback included).
"""

from __future__ import annotations

import asyncio
import logging
import time as _time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.service import protocol
from repro.service.protocol import MessageType, ProtocolError
from repro.service.resilience import RetryPolicy, retry_async
from repro.service.transports import MessageStream, TransportClosed, open_tcp_stream

_LOG = logging.getLogger(__name__)


class SourceAgent:
    """Replay item ticks, filter through primary DABs, push refreshes."""

    def __init__(
        self,
        source_id: int,
        items: Iterable[str],
        initial_values: Mapping[str, float],
        heartbeat_interval: Optional[float] = None,
        timestamp_refreshes: bool = False,
        clock: Callable[[], float] = _time.time,
    ):
        self.source_id = int(source_id)
        self.items: List[str] = sorted(items)
        missing = [name for name in self.items if name not in initial_values]
        if missing:
            raise ProtocolError(
                f"source {source_id} has no initial value for: "
                f"{', '.join(missing)}")
        #: the agent's live view of each item (updated by every tick).
        self.values: Dict[str, float] = {name: float(initial_values[name])
                                         for name in self.items}
        #: last value actually *sent* upstream — the DAB window's centre.
        self.sent_values: Dict[str, float] = dict(self.values)
        self.bounds: Dict[str, float] = {}
        self.epochs: Dict[str, int] = {}
        self.seq: Dict[str, int] = {name: 0 for name in self.items}
        self.heartbeat_interval = heartbeat_interval
        self.timestamp_refreshes = timestamp_refreshes
        self.clock = clock
        self._resync_pending: set = set()
        self.stats = {
            "ticks": 0,
            "refreshes_sent": 0,
            "refreshes_filtered": 0,
            "dab_updates_applied": 0,
            "dab_updates_rejected_stale_epoch": 0,
            "reconnects": 0,
            "heartbeats_sent": 0,
            "registrations_failsafe": 0,
            "dab_acks_sent": 0,
            "probes_answered": 0,
        }
        self._stream: Optional[MessageStream] = None
        self._listener: Optional[asyncio.Task] = None
        self._heartbeat_task: Optional[asyncio.Task] = None

    # -- DAB handling (mirrors SourceNode.set_bounds) -----------------------------

    def apply_dab_update(self, bounds: Mapping[str, float],
                         epochs: Mapping[str, Any],
                         seqs: Optional[Mapping[str, Any]] = None) -> None:
        """Adopt new primary DABs, item by item, newest epoch wins.

        ``seqs`` (present in the registration reply) floors our per-item
        refresh counters at the server's accepted high-water marks: a
        restarted process whose counters are back at 0 would otherwise
        have every refresh rejected as a stale duplicate until it climbed
        past the previous incarnation's numbering.
        """
        for name, bound in bounds.items():
            if name not in self.values:
                continue        # misrouted — not ours to filter
            epoch = int(epochs.get(name, 0))
            if epoch <= self.epochs.get(name, -1):
                self.stats["dab_updates_rejected_stale_epoch"] += 1
                continue
            self.epochs[name] = epoch
            self.bounds[name] = float(bound)
            self.stats["dab_updates_applied"] += 1
        if seqs:
            for name, floor in seqs.items():
                if name in self.seq:
                    self.seq[name] = max(self.seq[name], int(floor))

    def _violates(self, item: str) -> bool:
        bound = self.bounds.get(item)
        if bound is None:
            # No bound programmed yet: forward everything (fail-safe —
            # never silently *suppress* data the coordinator may need).
            return True
        return abs(self.values[item] - self.sent_values[item]) > bound

    # -- ticking ------------------------------------------------------------------

    def pending_refreshes(self, updates: Mapping[str, float]
                          ) -> List[Dict[str, Any]]:
        """Apply ``updates`` locally; return the REFRESH messages to send.

        This is the pure (transport-free) half of a tick, so tests can
        exercise the filter without any I/O.

        An item in ``_resync_pending`` is sent *unconditionally*, DAB or
        no DAB: after a reconnect, ``sent_values`` may hold a value whose
        send failed mid-flight — the filter would judge the retried value
        in-window against it and silently drop the refresh the
        coordinator never received.
        """
        messages: List[Dict[str, Any]] = []
        for item, value in updates.items():
            if item not in self.values:
                continue
            self.values[item] = float(value)
            self.stats["ticks"] += 1
            resync = item in self._resync_pending
            if not resync and not self._violates(item):
                self.stats["refreshes_filtered"] += 1
                continue
            self.seq[item] += 1
            self.sent_values[item] = self.values[item]
            messages.append(protocol.refresh(
                self.source_id, item, self.values[item], self.seq[item],
                resync=resync,
                sent_at=self.clock() if self.timestamp_refreshes else None,
            ))
            self._resync_pending.discard(item)
            self.stats["refreshes_sent"] += 1
        return messages

    async def tick(self, updates: Mapping[str, float]) -> int:
        """Programmatic tick: new values in, filtered refreshes out.

        Returns how many refreshes were actually pushed upstream."""
        messages = self.pending_refreshes(updates)
        stream = self._stream
        if messages and stream is None:
            raise TransportClosed(
                f"source {self.source_id} ticked while disconnected")
        for message in messages:
            await stream.send(message)
        return len(messages)

    # -- connection lifecycle -------------------------------------------------------

    async def connect(self, stream: MessageStream,
                      register_timeout: float = 5.0) -> None:
        """Register on ``stream`` and start applying inbound DAB updates.

        The registration reply (a ``DAB_UPDATE`` carrying current bounds,
        epochs and the server's accepted-seq high-water marks) is consumed
        *before* this returns: a tick racing ahead of it would both
        forward unfiltered values and — after a process restart — number
        its refreshes below the server's dedup guard.  If no reply lands
        within ``register_timeout`` seconds the agent proceeds fail-safe
        (no bounds → forward everything) and the listener applies the
        reply whenever it arrives.
        """
        if self._stream is not None:
            self.stats["reconnects"] += 1
            self._resync_pending = set(self.items)
            await self._stop_background()
            self._stream.close()
        self._stream = stream
        await stream.send(protocol.register_source(self.source_id, self.items))
        try:
            reply = await asyncio.wait_for(stream.receive(), register_timeout)
        except (asyncio.TimeoutError, TransportClosed, ProtocolError):
            # Timed out, connection died, or the reply arrived corrupt —
            # either way there is no usable reply.
            reply = None
            self.stats["registrations_failsafe"] += 1
            _LOG.warning(
                "source %d: no usable registration reply within %.3fs; "
                "proceeding fail-safe (no bounds -> every tick is forwarded)",
                self.source_id, register_timeout)
        if reply is not None:
            try:
                kind = protocol.validate_message(reply)
            except ProtocolError:
                kind = None
            if kind is MessageType.DAB_UPDATE:
                await self._handle_dab_update(reply, stream)
            elif kind is MessageType.ERROR:
                stream.close()
                self._stream = None
                raise ProtocolError(
                    f"registration rejected: {reply.get('reason')}")
        self._listener = asyncio.ensure_future(self._listen(stream))
        if self.heartbeat_interval:
            self._heartbeat_task = asyncio.ensure_future(self._heartbeats())

    async def _handle_dab_update(self, message: Mapping[str, Any],
                                 stream: MessageStream) -> None:
        """Apply an inbound DAB_UPDATE, ack it, and answer value probes."""
        self.apply_dab_update(message["bounds"], message["epochs"],
                              message.get("seqs"))
        msg_id = message.get("msg_id")
        if msg_id is not None:
            await stream.send(protocol.dab_ack(self.source_id, int(msg_id)))
            self.stats["dab_acks_sent"] += 1
        probe = message.get("probe")
        if probe:
            await self._answer_probe(probe, stream)

    async def _answer_probe(self, items: Iterable[str],
                            stream: MessageStream) -> None:
        """Immediately resend the probed items' current values.

        A probe means the coordinator suspects it missed a refresh (seq
        gap, expired lease): the authoritative cure is a fresh value, so
        each probed item gets an unconditional ``resync`` refresh with a
        bumped seq — the filter is bypassed exactly like the
        post-reconnect resync path.
        """
        for item in sorted(items):
            if item not in self.values:
                continue
            self.seq[item] += 1
            self.sent_values[item] = self.values[item]
            self._resync_pending.discard(item)
            await stream.send(protocol.refresh(
                self.source_id, item, self.values[item], self.seq[item],
                resync=True,
                sent_at=self.clock() if self.timestamp_refreshes else None))
            self.stats["probes_answered"] += 1
            self.stats["refreshes_sent"] += 1

    async def _listen(self, stream: MessageStream) -> None:
        try:
            while True:
                message = await stream.receive()
                if message is None:
                    break
                try:
                    kind = protocol.validate_message(message)
                except ProtocolError:
                    break
                if kind is MessageType.DAB_UPDATE:
                    await self._handle_dab_update(message, stream)
                elif kind is MessageType.ERROR:
                    break
        except (ProtocolError, TransportClosed):
            pass
        except asyncio.CancelledError:
            return
        # The inbound half is unusable (EOF, poisoned decoder, or a
        # rejection): close the whole stream so the next tick raises
        # TransportClosed and the reconnect path takes over, instead of
        # sending into a connection the coordinator already gave up on.
        stream.close()

    async def _heartbeats(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                if self._stream is None:
                    return
                await self._stream.send(
                    protocol.heartbeat(self.source_id, self.seq))
                self.stats["heartbeats_sent"] += 1
        except (TransportClosed, asyncio.CancelledError):
            return

    async def _stop_background(self) -> None:
        for task in (self._listener, self._heartbeat_task):
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._listener = None
        self._heartbeat_task = None

    async def close(self) -> None:
        await self._stop_background()
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # -- trace replay ----------------------------------------------------------------

    async def replay(
        self,
        traces: "Any",
        tick_interval: float = 0.0,
        start_step: int = 1,
        max_steps: Optional[int] = None,
        reconnect: Optional[Callable[[], "Any"]] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> int:
        """Replay a :class:`~repro.dynamics.traces.TraceSet` through the
        filter; returns the number of refreshes pushed.

        ``reconnect``, if given, is an async factory returning a fresh
        connected :class:`MessageStream`; on a transport drop mid-replay
        the agent reconnects through it (re-registering, resyncing) and
        retries the step that failed — every item is then force-resent
        (``resync=True``), so a refresh whose send died on the old
        connection is re-delivered even though the local filter state had
        already recentred on it.

        ``retry_policy`` governs *repeated* reconnect failures: instead
        of one bare attempt per dropped step, the agent backs off between
        attempts (exponential + deterministic jitter) and raises
        :class:`~repro.service.resilience.RetryExhausted` once the policy
        gives up.
        """
        lengths = [len(traces[item]) for item in self.items]
        last = min(lengths) if lengths else 0
        if max_steps is not None:
            last = min(last, start_step + max_steps)
        sent = 0
        step = start_step
        while step < last:
            updates = {item: traces[item].at(step) for item in self.items}
            try:
                sent += await self.tick(updates)
            except TransportClosed:
                if reconnect is None:
                    raise
                await self._reconnect(reconnect, retry_policy)
                continue            # retry the same step after resync
            step += 1
            if tick_interval:
                await asyncio.sleep(tick_interval)
        return sent

    async def _reconnect(self, reconnect: Callable[[], "Any"],
                         retry_policy: Optional[RetryPolicy]) -> None:
        if retry_policy is None:
            await self.connect(await reconnect())
            return

        async def _attempt() -> None:
            await self.connect(await reconnect())

        await retry_async(
            retry_policy, _attempt,
            retry_on=(TransportClosed, ConnectionError, OSError))

    async def run(self, host: str, port: int, traces: "Any",
                  tick_interval: float = 0.0,
                  max_steps: Optional[int] = None,
                  retry_policy: Optional[RetryPolicy] = None,
                  resolve: Optional[Callable[[], Any]] = None) -> int:
        """Connect over TCP, replay, and close — the ``repro agent`` body.

        ``resolve``, if given, is called before *every* dial (initial and
        reconnect) and must return the current ``(host, port)`` target —
        it may be async.  Without it the original address is pinned,
        which is wrong the moment a supervisor restores a dead
        coordinator shard on a new port: the old behaviour had every
        reconnect attempt dial the corpse's address forever.
        """
        async def _dial() -> MessageStream:
            target_host, target_port = host, port
            if resolve is not None:
                target = resolve()
                if asyncio.iscoroutine(target):
                    target = await target
                target_host, target_port = target
            return await open_tcp_stream(target_host, target_port)

        await self.connect(await _dial())
        try:
            return await self.replay(traces, tick_interval=tick_interval,
                                     max_steps=max_steps, reconnect=_dial,
                                     retry_policy=retry_policy)
        finally:
            await self.close()


def agents_for_scenario(scenario: "Any", item_to_source: Mapping[str, int],
                        timestamp_refreshes: bool = False,
                        heartbeat_interval: Optional[float] = None,
                        ) -> Dict[int, SourceAgent]:
    """One agent per source id, owning exactly the items the coordinator
    routes to it (same round-robin assignment on both sides)."""
    initial = scenario.traces.initial_values()
    owned: Dict[int, List[str]] = {}
    for item, source_id in item_to_source.items():
        owned.setdefault(source_id, []).append(item)
    return {
        source_id: SourceAgent(source_id, items, initial,
                               timestamp_refreshes=timestamp_refreshes,
                               heartbeat_interval=heartbeat_interval)
        for source_id, items in sorted(owned.items())
    }
