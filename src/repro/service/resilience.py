"""Resilience policies for the live service.

Two small, transport-free building blocks the chaos-hardened service
layers compose:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter
  and a bounded attempt budget.  It replaces the bare ``while True:
  reconnect()`` loops in the agent and client: a flapping link no longer
  hammers the coordinator at full speed, and a dead one eventually gives
  up through an explicit callback instead of spinning forever.  The
  jitter is *seeded* (``random.Random``, keyed on ``"seed:attempt"``)
  so a chaos-soak run replays bit-identically.
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine, used around the compiled-GP recompute path: after
  ``failure_threshold`` consecutive solver failures the breaker opens
  and the coordinator serves conservatively-shrunk last-good plans
  (no solver calls at all) until ``reset_timeout`` elapses, then lets
  one half-open probe through; a success closes it again and counts a
  recovery.

Both take injectable clocks/sleeps so the soak harness can drive them on
a logical step clock with zero wall-time dependence.
"""

from __future__ import annotations

import enum
import random
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional

from repro.exceptions import ReproError


class RetryExhausted(ReproError):
    """A retry loop ran out of attempts (the give-up path)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt ``0, 1, 2, ...`` is
    ``min(base_delay * backoff**attempt, max_delay)``, stretched by a
    jitter factor drawn uniformly from ``[1, 1 + jitter]`` — seeded per
    ``(seed, attempt)``, so the same policy replays the same delays.
    A ``max_attempts`` of ``n`` allows attempts ``0 .. n-1``.
    """

    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    max_attempts: int = 8
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ReproError("retry delays must be >= 0")
        if self.backoff < 1.0:
            raise ReproError(f"backoff must be >= 1, got {self.backoff!r}")
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.jitter < 0.0:
            raise ReproError("jitter must be >= 0")

    def delay(self, attempt: int) -> float:
        base = min(self.base_delay * self.backoff ** attempt, self.max_delay)
        if self.jitter > 0.0 and base > 0.0:
            stretch = random.Random(f"{self.seed}:{attempt}").uniform(
                1.0, 1.0 + self.jitter)
            base = min(base * stretch, self.max_delay * (1.0 + self.jitter))
        return base

    def delays(self) -> Iterator[float]:
        """The full backoff schedule, one delay per allowed attempt."""
        for attempt in range(self.max_attempts):
            yield self.delay(attempt)


async def retry_async(
    policy: RetryPolicy,
    operation: Callable[[], Any],
    *,
    retry_on: tuple = (Exception,),
    on_give_up: Optional[Callable[[BaseException], None]] = None,
    sleep: Optional[Callable[[float], Any]] = None,
) -> Any:
    """Run ``operation`` (an async thunk) under ``policy``.

    Each failed attempt sleeps the policy's delay before the next one;
    when the budget is exhausted ``on_give_up`` is invoked with the last
    error and :class:`RetryExhausted` is raised from it.
    """
    if sleep is None:
        import asyncio

        sleep = asyncio.sleep
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return await operation()
        except retry_on as err:          # noqa: PERF203 — the loop IS the policy
            last = err
            if attempt + 1 < policy.max_attempts:
                await sleep(policy.delay(attempt))
    if on_give_up is not None:
        on_give_up(last)
    raise RetryExhausted(
        f"gave up after {policy.max_attempts} attempts: {last}") from last


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed / open / half-open breaker with recovery accounting.

    ``allow()`` gates each protected call: closed always allows; open
    rejects until ``reset_timeout`` has elapsed since opening, then moves
    to half-open and allows exactly one probe; the probe's
    ``record_success`` closes the breaker (a *recovery*), its
    ``record_failure`` re-opens it.  The clock is injectable so logical
    step clocks drive it deterministically.
    """

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 30.0,
                 clock: Optional[Callable[[], float]] = None):
        if failure_threshold < 1:
            raise ReproError("failure_threshold must be >= 1")
        if reset_timeout <= 0.0:
            raise ReproError("reset_timeout must be > 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        #: ``None`` means "no clock was injected": the owner that embeds
        #: this breaker (the server) replaces it with its own clock via
        #: :meth:`bind_clock`, so one time source rules the whole service
        #: instead of the breaker silently ticking ``time.monotonic``
        #: while everything else runs on ``time.time`` or a step clock.
        self._clock_injected = clock is not None
        self.clock: Callable[[], float] = (
            clock if clock is not None else _time.monotonic)
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.stats: Dict[str, float] = {
            "failures": 0,
            "opens": 0,
            "rejected_calls": 0,
            "probes": 0,
            "recoveries": 0,
            "open_seconds": 0.0,
        }

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt the owner's time source — unless the constructor already
        received an explicit clock, which always wins (a soak harness
        wiring its step clock in directly must not be overridden)."""
        if not self._clock_injected:
            self.clock = clock
            self._clock_injected = True

    def allow(self) -> bool:
        """May the next protected call proceed?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.clock() - self._opened_at >= self.reset_timeout:
                self.state = BreakerState.HALF_OPEN
                self._probe_in_flight = False
            else:
                self.stats["rejected_calls"] += 1
                return False
        # Half-open: exactly one probe at a time.
        if self._probe_in_flight:
            self.stats["rejected_calls"] += 1
            return False
        self._probe_in_flight = True
        self.stats["probes"] += 1
        return True

    def record_success(self) -> None:
        if self.state is not BreakerState.CLOSED:
            self.stats["recoveries"] += 1
            self.stats["open_seconds"] += max(
                0.0, self.clock() - self._opened_at)
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self) -> None:
        self.stats["failures"] += 1
        self._consecutive_failures += 1
        self._probe_in_flight = False
        if (self.state is BreakerState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold):
            if self.state is not BreakerState.OPEN:
                self.stats["opens"] += 1
            self.state = BreakerState.OPEN
            self._opened_at = self.clock()
