"""Durability layer for the live coordinator: write-ahead journal + snapshots.

A coordinator crash used to discard every item value, DAB epoch,
accepted-seq high-water mark and last-good plan — the exact state the
QAB-fidelity guarantee rests on.  This module makes that state durable
with the classic snapshot + delta-log recovery design (DBToaster's
observation, PAPERS.md: replaying a compact delta log over a snapshot is
orders of magnitude cheaper than recomputing from scratch — and the
coordinator's refresh/plan/epoch stream *is* such a delta log):

* **Write-ahead journal** (``wal.log``) — an append-only file of
  length-prefixed records.  Each record is an 8-byte header (``>II``:
  body length, CRC-32 of the body) followed by the body — the *same*
  canonical JSON encoding the wire protocol uses
  (:func:`repro.service.protocol.encode_body`), so a journal record is
  decoded by exactly the code path that decodes wire frames.  Appends
  are unbuffered (a ``kill -9`` loses no user-space buffers); the
  ``fsync`` policy decides what a machine crash can lose.
* **Snapshots** (``snapshot-<record-index>.json``) — periodic full dumps
  of the recovery state, written atomically (temp file + rename) with an
  embedded SHA-256 so a damaged snapshot is detected and the previous
  one used instead.  The snapshot's record index says how much of the
  journal it covers; recovery replays only the tail after it.

Failure semantics on open:

* a **torn tail** (the process died mid-append: truncated header or
  body at end of file) is silently truncated — by construction only the
  final record can be torn, and write-ahead means the state change it
  described was never acknowledged anywhere;
* a **CRC-corrupt record** that is fully present is *not* a torn write
  — it is disk/filesystem damage, and replaying past it would serve
  wrong answers with a straight face.  Recovery aborts with
  :class:`JournalError` naming the record.

The journal knows nothing about the coordinator: it stores and returns
dicts.  :mod:`repro.service.core` and :mod:`repro.service.server` decide
what to record and how to replay it.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import struct
import time as _time
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import ReproError
from repro.filters.assignment import DABAssignment
from repro.service.protocol import decode_body, encode_body

#: Record header: body length, CRC-32 of the body (both big-endian u32).
_RECORD_HEADER = struct.Struct(">II")
RECORD_HEADER_BYTES = _RECORD_HEADER.size

#: Sanity ceiling on one record body — matches the wire protocol's frame
#: limit; a longer length field cannot come from our own appends.
MAX_RECORD_BYTES = 1 << 20

#: Accepted fsync policies: ``always`` fsyncs every append (a machine
#: crash loses nothing acknowledged), ``interval`` fsyncs every
#: ``fsync_interval`` appends and on every snapshot, ``off`` never
#: fsyncs explicitly (a *process* crash still loses nothing — appends
#: are unbuffered — but a machine crash may lose the OS page cache).
FSYNC_POLICIES = ("always", "interval", "off")

WAL_NAME = "wal.log"
_SNAPSHOT_PREFIX = "snapshot-"


class JournalError(ReproError):
    """Corrupt or unusable journal state that must not be replayed past."""


# ---------------------------------------------------------------------------
# plan (de)serialization
# ---------------------------------------------------------------------------

def plan_to_wire(plan: DABAssignment) -> Dict[str, Any]:
    """A JSON-safe dump of one plan (``objective`` may be NaN — JSON
    cannot carry it, so non-finite objectives round-trip as ``None``)."""
    objective: Optional[float] = plan.objective
    if objective is not None and not math.isfinite(objective):
        objective = None
    return {
        "primary": dict(plan.primary),
        "secondary": dict(plan.secondary) if plan.secondary is not None else None,
        "reference_values": dict(plan.reference_values),
        "recompute_rate": plan.recompute_rate,
        "objective": objective,
    }


def plan_from_wire(data: Mapping[str, Any]) -> DABAssignment:
    secondary = data.get("secondary")
    objective = data.get("objective")
    return DABAssignment(
        primary={k: float(v) for k, v in data["primary"].items()},
        secondary={k: float(v) for k, v in secondary.items()}
        if secondary is not None else None,
        reference_values={k: float(v)
                          for k, v in data.get("reference_values", {}).items()},
        recompute_rate=float(data.get("recompute_rate", 0.0)),
        objective=float("nan") if objective is None else float(objective),
    )


# ---------------------------------------------------------------------------
# record framing
# ---------------------------------------------------------------------------

def encode_record(record: Mapping[str, Any]) -> bytes:
    """One journal record: ``>II`` (length, CRC-32) + canonical JSON body."""
    body = encode_body(record)
    if len(body) > MAX_RECORD_BYTES:
        raise JournalError(
            f"journal record of {len(body)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte limit")
    return _RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body


def scan_records(data: bytes, path: str = "wal") -> Tuple[List[Dict[str, Any]], int]:
    """Decode every complete record in ``data``.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    length of the well-formed prefix — anything after it is a torn tail
    the caller should truncate.  A *complete* record whose CRC does not
    match its body is corruption, not a torn write: raises
    :class:`JournalError` naming the offending record.
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    total = len(data)
    while True:
        if total - offset < RECORD_HEADER_BYTES:
            return records, offset
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            # Our appender can never have written this header; the only
            # way a crash produces it is a torn header whose first bytes
            # happen to parse — and a torn header can only be the tail.
            return records, offset
        body_start = offset + RECORD_HEADER_BYTES
        if total - body_start < length:
            return records, offset
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != crc:
            raise JournalError(
                f"CRC mismatch in {path} record {len(records)} at byte "
                f"{offset}: journal is corrupt, refusing to replay past it")
        try:
            records.append(decode_body(body))
        except Exception as error:
            raise JournalError(
                f"undecodable {path} record {len(records)} at byte "
                f"{offset} (CRC valid): {error}")
        offset = body_start + length


# ---------------------------------------------------------------------------
# the journal proper
# ---------------------------------------------------------------------------

class Journal:
    """One coordinator's durable state: a WAL plus rolling snapshots.

    Lifecycle: :meth:`open` scans the WAL (truncating a torn tail),
    then :meth:`latest_snapshot` + :meth:`records` drive recovery, then
    :meth:`append`/:meth:`write_snapshot` record live operation.  The
    directory is created on open if missing — a missing/empty directory
    is simply a fresh journal, never an error.
    """

    def __init__(self, directory: str, fsync: str = "always",
                 snapshot_every: int = 500, fsync_interval: int = 64,
                 keep_snapshots: int = 2):
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if snapshot_every < 1:
            raise JournalError("snapshot_every must be >= 1")
        if fsync_interval < 1:
            raise JournalError("fsync_interval must be >= 1")
        if keep_snapshots < 1:
            raise JournalError("keep_snapshots must be >= 1")
        self.directory = Path(directory)
        self.fsync = fsync
        self.snapshot_every = int(snapshot_every)
        self.fsync_interval = int(fsync_interval)
        self.keep_snapshots = int(keep_snapshots)

        self.record_count = 0
        self.records_since_snapshot = 0
        self.truncated_tail_bytes = 0
        self.snapshots_written = 0
        self.fsyncs = 0
        #: per-append wall seconds (write + policy fsync) — the durability
        #: tax the soak reports percentiles of.  Bounded so a long-running
        #: server does not grow it without limit.
        self.append_seconds: List[float] = []
        self._append_samples_cap = 100_000

        self._fh: Optional[Any] = None
        self._opened = False

    # -- lifecycle --------------------------------------------------------------

    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_NAME

    def open(self) -> "Journal":
        """Scan the WAL, truncate any torn tail, start appending after it."""
        if self._opened:
            return self
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.wal_path
        data = path.read_bytes() if path.exists() else b""
        records, valid = scan_records(data, path=str(path))
        self.record_count = len(records)
        self.truncated_tail_bytes = len(data) - valid
        if self.truncated_tail_bytes:
            with open(path, "r+b") as fh:
                fh.truncate(valid)
                fh.flush()
                os.fsync(fh.fileno())
        # Unbuffered append: every write() reaches the OS immediately, so
        # a killed *process* loses nothing; fsync policy governs what a
        # killed *machine* can lose.
        self._fh = open(path, "ab", buffering=0)
        latest = self._latest_snapshot_index()
        self.records_since_snapshot = self.record_count - (latest or 0)
        self._opened = True
        return self

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._opened = False

    # -- appending --------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> int:
        """Durably append one record; returns its index."""
        if self._fh is None:
            raise JournalError("journal is not open")
        started = _time.perf_counter()
        self._fh.write(encode_record(record))
        if self.fsync == "always" or (
                self.fsync == "interval"
                and (self.record_count + 1) % self.fsync_interval == 0):
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
        if len(self.append_seconds) < self._append_samples_cap:
            self.append_seconds.append(_time.perf_counter() - started)
        self.record_count += 1
        self.records_since_snapshot += 1
        return self.record_count - 1

    # -- reading ----------------------------------------------------------------

    def records(self, start: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield records ``start..`` — CRC-checked from the beginning, so
        corruption anywhere before the tail is detected, not skipped."""
        path = self.wal_path
        data = path.read_bytes() if path.exists() else b""
        records, _valid = scan_records(data, path=str(path))
        for record in records[start:]:
            yield record

    # -- snapshots ---------------------------------------------------------------

    def _snapshot_path(self, record_index: int) -> Path:
        return self.directory / f"{_SNAPSHOT_PREFIX}{record_index:012d}.json"

    def _snapshot_indices(self) -> List[int]:
        out = []
        for path in self.directory.glob(f"{_SNAPSHOT_PREFIX}*.json"):
            stem = path.name[len(_SNAPSHOT_PREFIX):-len(".json")]
            try:
                out.append(int(stem))
            except ValueError:
                continue
        return sorted(out)

    def _latest_snapshot_index(self) -> Optional[int]:
        indices = self._snapshot_indices()
        return indices[-1] if indices else None

    def write_snapshot(self, state: Mapping[str, Any]) -> Path:
        """Atomically write a snapshot covering every record so far."""
        if not self._opened:
            raise JournalError("journal is not open")
        index = self.record_count
        body = encode_body(state)
        payload = json.dumps({
            "record_index": index,
            "sha256": hashlib.sha256(body).hexdigest(),
            "state": json.loads(body.decode("utf-8")),
        }, indent=None, separators=(",", ":"), sort_keys=True)
        path = self._snapshot_path(index)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._fsync_directory()
        self.snapshots_written += 1
        self.records_since_snapshot = 0
        for old in self._snapshot_indices()[:-self.keep_snapshots]:
            try:
                self._snapshot_path(old).unlink()
            except OSError:
                pass
        return path

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def latest_snapshot(self) -> Optional[Tuple[int, Dict[str, Any]]]:
        """``(record_index, state)`` of the newest *intact* snapshot.

        A snapshot that fails to parse or whose embedded digest does not
        match is skipped in favour of the previous one — the journal is
        never compacted, so an older snapshot just means a longer replay.
        """
        for index in reversed(self._snapshot_indices()):
            path = self._snapshot_path(index)
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                state = payload["state"]
                digest = hashlib.sha256(encode_body(state)).hexdigest()
                if digest != payload["sha256"]:
                    continue
                return int(payload["record_index"]), state
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return None

    # -- introspection ------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        samples = sorted(self.append_seconds)

        def _pct(p: float) -> float:
            if not samples:
                return 0.0
            rank = min(len(samples) - 1,
                       max(0, int(round(p / 100.0 * (len(samples) - 1)))))
            return samples[rank]

        return {
            "records": self.record_count,
            "records_since_snapshot": self.records_since_snapshot,
            "snapshots_written": self.snapshots_written,
            "fsync_policy": self.fsync,
            "fsyncs": self.fsyncs,
            "wal_bytes": (self.wal_path.stat().st_size
                          if self.wal_path.exists() else 0),
            "truncated_tail_bytes": self.truncated_tail_bytes,
            "append_ms": {f"p{p:g}": _pct(p) * 1000.0
                          for p in (50.0, 95.0, 99.0)} if samples else {},
        }

    def describe(self, last: int = 5) -> Dict[str, Any]:
        """An offline summary for ``repro journal inspect`` — safe to call
        on a journal that is not open (read-only scan)."""
        path = self.wal_path
        data = path.read_bytes() if path.exists() else b""
        records, valid = scan_records(data, path=str(path))
        by_type: Dict[str, int] = {}
        for record in records:
            kind = str(record.get("t", "?"))
            by_type[kind] = by_type.get(kind, 0) + 1
        snapshots = []
        for index in self._snapshot_indices():
            spath = self._snapshot_path(index)
            snapshots.append({"record_index": index, "file": spath.name,
                              "bytes": spath.stat().st_size})
        latest = self.latest_snapshot()
        return {
            "directory": str(self.directory),
            "wal_bytes": len(data),
            "torn_tail_bytes": len(data) - valid,
            "records": len(records),
            "records_by_type": dict(sorted(by_type.items())),
            "snapshots": snapshots,
            "latest_snapshot_index": latest[0] if latest else None,
            "replay_tail_records": (len(records) - latest[0]) if latest
            else len(records),
            "last_records": records[-last:] if last > 0 else [],
        }
