"""Chaos soak: the live service under injected faults, audited end to end.

``run_chaos_soak`` stands up a real :class:`CoordinatorServer`, N
:class:`SourceAgent` processes-in-miniature and a subscriber, wires every
source link through a :class:`~repro.service.chaos.FaultInjector`, and
replays a deterministic scenario while the injector drops, duplicates,
delays, corrupts, disconnects, partitions and crashes according to a
named (or custom) :class:`~repro.service.chaos.FaultSchedule`.

**The audit.** At deterministic checkpoints a subscriber on a clean
(chaos-free) connection takes an authoritative snapshot and compares
every served query value against ground truth — the sources' *live*
values, which the coordinator never sees directly.  The contract under
audit is the paper's Theorem 1 extended to a lossy world:

* a query either answers within its QAB, **or**
* it is honestly flagged in the snapshot's ``degraded`` map with a
  widened bound (the PR 1 lease semantics) — and then the widened bound
  is expected to cover the truth too (tracked, non-fatal, because the
  drift model is a heuristic).

Anything else is an **unexcused QAB violation** and fails the soak.

**Determinism.** The whole run is driven on a logical step clock: the
server's ``clock`` is the step counter, heartbeats and lease/retry
sweeps are issued explicitly each step, agents tick in sorted order, and
every chaos decision depends only on per-link frame order under a seeded
substream — so the same seed replays the identical fault trace
(``fault_trace_digest`` in the report) and the identical audit.

Checkpoints are placed where the fault trace shows the wire quiet for
``audit_margin`` steps: one clean heartbeat round is what the detection
machinery (seq gaps → probes, leases → degradation) needs to have either
repaired or honestly flagged any earlier loss.  Crash windows generate
no wire events, so audits *do* run while a source is down — that is
where the degraded-excusal path earns its keep.  After the scheduled
steps the injector is disabled and a recovery tail runs until the
degraded map drains; the soak fails if it never does.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import ReproError
from repro.service import protocol
from repro.service.agent import SourceAgent, agents_for_scenario
from repro.service.chaos import FaultInjector, FaultSchedule, chaos_loopback_pair
from repro.service.client import ServiceClient, latency_percentiles
from repro.service.journal import Journal
from repro.service.resilience import (
    CircuitBreaker,
    RetryExhausted,
    RetryPolicy,
    retry_async,
)
from repro.service.transports import TransportClosed
from repro.simulation.faults import CrashWindow, PartitionWindow

#: name -> (schedule builder, default step budget).  Every named schedule
#: mixes at least loss + partition + agent crash (the acceptance trio).
_NAMED_SCHEDULES = {
    "smoke": (lambda seed: FaultSchedule(
        drop_rate=0.3, loss_windows=(PartitionWindow(5.0, 9.0),),
        duplicate_rate=0.05,
        partitions=(PartitionWindow(12.0, 14.0),),
        crash_windows=(CrashWindow(0, 16.0, 22.0),),
        seed=seed), 28),
    "ci": (lambda seed: FaultSchedule(
        drop_rate=0.35, loss_windows=(PartitionWindow(6.0, 12.0),
                                      PartitionWindow(30.0, 35.0),),
        duplicate_rate=0.08, delay_rate=0.08, delay_steps=2,
        disconnect_rate=0.01, corrupt_rate=0.008,
        partitions=(PartitionWindow(18.0, 22.0),),
        crash_windows=(CrashWindow(0, 40.0, 46.0),),
        seed=seed), 60),
    "heavy": (lambda seed: FaultSchedule(
        drop_rate=0.4, loss_windows=(PartitionWindow(10.0, 25.0),
                                     PartitionWindow(60.0, 75.0),
                                     PartitionWindow(110.0, 120.0),),
        duplicate_rate=0.12, delay_rate=0.12, delay_steps=3,
        disconnect_rate=0.02, corrupt_rate=0.015,
        partitions=(PartitionWindow(40.0, 46.0), PartitionWindow(90.0, 94.0),),
        crash_windows=(CrashWindow(0, 50.0, 58.0), CrashWindow(1, 98.0, 106.0),),
        seed=seed), 140),
    # Smoke-sized wire faults plus (by default) two coordinator kills —
    # the schedule the journal/restore path is gated on in CI.
    "restart": (lambda seed: FaultSchedule(
        drop_rate=0.25, loss_windows=(PartitionWindow(4.0, 7.0),),
        duplicate_rate=0.05,
        partitions=(PartitionWindow(20.0, 22.0),),
        crash_windows=(CrashWindow(0, 13.0, 17.0),),
        seed=seed), 30),
    # The restart profile with the kills aimed at individual coordinator
    # *shards* (rotating across the cluster) instead of the whole
    # coordinator — pair with ``run_chaos_soak(shards=N)``.
    "shards": (lambda seed: FaultSchedule(
        drop_rate=0.25, loss_windows=(PartitionWindow(4.0, 7.0),),
        duplicate_rate=0.05,
        partitions=(PartitionWindow(20.0, 22.0),),
        crash_windows=(CrashWindow(0, 13.0, 17.0),),
        seed=seed), 30),
    # The self-healing profile: shard kills are *undetected* crashes
    # (the router's plumbing keeps pointing at the corpse) healed only
    # by the heartbeat failure detector, while a live resharding
    # migration runs concurrently — the kills land mid-migration.
    # Requires ``run_chaos_soak(shards=N)``.
    "reshard": (lambda seed: FaultSchedule(
        drop_rate=0.25, loss_windows=(PartitionWindow(4.0, 7.0),),
        duplicate_rate=0.05,
        partitions=(PartitionWindow(27.0, 29.0),),
        crash_windows=(CrashWindow(0, 20.0, 24.0),),
        seed=seed), 34),
}

#: default coordinator-kill steps per schedule (used when the caller
#: journals the run but does not pick kill steps explicitly).  The
#: ``reshard`` kills straddle the migration started at
#: ``_RESHARD_MIGRATE_STEP`` so the first crash lands mid-move.
_DEFAULT_KILL_STEPS = {"restart": (9, 24), "shards": (9, 24),
                       "reshard": (13, 24)}

#: step at which the ``reshard`` profile starts its live migration
#: (freeze tick; the cutover tick follows one step later, so the
#: default first kill at step 13 hits an item mid-flight).
_RESHARD_MIGRATE_STEP = 12


def named_schedule(name: str, seed: int = 1) -> Tuple[FaultSchedule, int]:
    """``(schedule, default step budget)`` for a named soak profile."""
    try:
        build, steps = _NAMED_SCHEDULES[name]
    except KeyError:
        raise ReproError(
            f"unknown chaos schedule {name!r}; "
            f"pick one of {sorted(_NAMED_SCHEDULES)}") from None
    return build(seed), steps


def _plan_reshard_moves(cluster: Any, count: int = 2) -> Dict[str, int]:
    """Deterministic migration plan for the ``reshard`` soak: the first
    *count* items (sorted) each move to the active shard after their
    current owner in rotation — guaranteed real moves, same plan for the
    same seed/scenario."""
    active = list(cluster.decomposition.active_shards)
    moves: Dict[str, int] = {}
    if len(active) < 2:
        return moves
    for item in sorted(cluster._item_shards):
        owner = cluster.shard_map.shard_of(item)
        if owner not in active:
            continue
        target = active[(active.index(owner) + 1) % len(active)]
        if target == owner:
            continue
        moves[item] = target
        if len(moves) >= count:
            break
    return moves


class _StepClock:
    """The soak's logical time source, shared with the server."""

    def __init__(self) -> None:
        self.step = 0

    def __call__(self) -> float:
        return float(self.step)


async def _drain(rounds: int = 8) -> None:
    """Let queued loopback frames, writer tasks and listeners settle."""
    for _ in range(rounds):
        await asyncio.sleep(0)


async def _run_async(
    server: Any,
    scenario: Any,
    item_to_source: Dict[str, int],
    injector: FaultInjector,
    clock: _StepClock,
    steps: int,
    audit_margin: int,
    register_timeout: float,
    server_factory: Optional[Callable[[], Any]] = None,
    kill_steps: Sequence[int] = (),
    kill_handler: Optional[Callable[[int], Any]] = None,
    step_hook: Optional[Callable[[int], Any]] = None,
    hold_tail: Optional[Callable[[], bool]] = None,
) -> Dict[str, Any]:
    # A cluster front-end must attach its shards before anything
    # connects; the single server has no such hook.
    if hasattr(server, "start"):
        await server.start()
    traces = scenario.traces
    queries = scenario.queries
    qab_slack = 1e-9
    # A delayed frame lands delay_steps after its fault event fired; the
    # quiet period before an audit has to outlast that.
    audit_margin = max(audit_margin, injector.schedule.delay_steps + 1)

    #: registration itself runs through the chaos links, so connecting is
    #: retried under a policy (zero backoff: the step clock is logical).
    connect_policy = RetryPolicy(base_delay=0.0, backoff=1.0, max_delay=0.0,
                                 max_attempts=12)
    connect_give_ups = 0

    async def _connect(agent: SourceAgent) -> None:
        nonlocal connect_give_ups

        async def _attempt() -> None:
            client_end, server_end = chaos_loopback_pair(
                injector, peer=f"src{agent.source_id}")
            server.adopt_connection(server_end)
            await _drain(2)
            await agent.connect(client_end, register_timeout=register_timeout)

        try:
            await retry_async(connect_policy, _attempt,
                              retry_on=(TransportClosed, ConnectionError))
        except RetryExhausted:
            # Leave the source down: its leases will expire and the
            # degraded flags tell subscribers the truth until the next
            # tick/heartbeat triggers another connection attempt.
            connect_give_ups += 1

    agents = agents_for_scenario(scenario, item_to_source)
    for agent in agents.values():
        await _connect(agent)
    await _drain()

    auditor = ServiceClient(server.connect_loopback())
    await auditor.subscribe("*")

    #: ground truth: each source's live view — frozen while it is down.
    truth: Dict[str, float] = dict(traces.initial_values())
    crashed: Set[int] = set()
    retired_stats: List[Dict[str, int]] = []

    trace_len = min(len(traces[item]) for item in item_to_source)
    last = min(trace_len, steps + 1)
    kills = {int(s) for s in kill_steps if 1 <= int(s) < last}
    restarts: List[Dict[str, Any]] = []
    append_samples: List[float] = []
    retired_refreshes = 0
    fault_steps: Set[int] = set()
    degraded_open: Dict[str, int] = {}
    recovery_durations: List[float] = []
    refreshes_per_step: List[float] = []
    audit_log: List[Dict[str, Any]] = []
    unexcused: List[Dict[str, Any]] = []
    excused = 0
    degraded_bound_exceeded: List[Dict[str, Any]] = []
    audits = 0
    audits_with_degraded = 0

    def _note_faults() -> None:
        for event_step, _link, kind, _frame in injector.trace:
            # Duplicates are benign by construction (seq/epoch dedup);
            # they never create staleness, so they don't block audits.
            if kind != "duplicate":
                fault_steps.add(event_step)

    def _track_degraded(step: int) -> None:
        current = set(server._degraded_keys)
        for name in current:
            degraded_open.setdefault(name, step)
        for name in list(degraded_open):
            if name not in current:
                recovery_durations.append(float(step - degraded_open.pop(name)))

    async def _heartbeat(agent: SourceAgent) -> None:
        stream = agent._stream
        if stream is None:
            await _connect(agent)
            stream = agent._stream
        try:
            await stream.send(protocol.heartbeat(agent.source_id, agent.seq))
            agent.stats["heartbeats_sent"] += 1
        except TransportClosed:
            await _connect(agent)

    async def _audit(step: int, phase: str) -> None:
        nonlocal excused, audits, audits_with_degraded
        served = await auditor.request_snapshot()
        degraded = dict(auditor.degraded)
        audits += 1
        if degraded:
            audits_with_degraded += 1
        entry = {"step": step, "phase": phase,
                 "degraded_queries": sorted(degraded)}
        for query in queries:
            name = query.name
            if name not in served:
                continue
            error = abs(served[name] - query.evaluate(truth))
            if error <= query.qab * (1.0 + qab_slack) + 1e-12:
                continue
            if name in degraded:
                excused += 1
                if error > degraded[name] * (1.0 + qab_slack) + 1e-12:
                    degraded_bound_exceeded.append(
                        {"step": step, "query": name, "error": error,
                         "widened_bound": degraded[name]})
                continue
            unexcused.append({"step": step, "query": name, "error": error,
                              "qab": query.qab, "phase": phase})
        audit_log.append(entry)

    async def _kill_and_restore(step: int) -> None:
        """The coordinator-kill fault: drop the server with no parting
        snapshot (journal appends are unbuffered, so the WAL already
        holds everything it accepted), build a fresh one, restore from
        snapshot+tail, and let every surviving agent re-attach through
        the ordinary reconnect/resync machinery."""
        nonlocal server, auditor, retired_refreshes
        assert server_factory is not None
        old_journal = server.journal
        retired_refreshes += server.stats["refreshes_accepted"]
        await auditor.close()
        await server.close(final_snapshot=False)
        if old_journal is not None:
            append_samples.extend(old_journal.append_seconds)
        server = server_factory()
        recovery = server.restore()
        recovery["step"] = step
        restarts.append(recovery)
        # A restart silences the wire exactly like a fault burst would;
        # audits hold off until the margin clears it.
        fault_steps.add(step)
        for source_id in sorted(agents):
            if source_id in crashed:
                continue
            agent = agents[source_id]
            # Force a full resync: fresh values clear any restored lease
            # suspicion without waiting for the probe machinery.
            agent._resync_pending = set(agent.items)
            await _connect(agent)
        await _drain()
        auditor = ServiceClient(server.connect_loopback())
        await auditor.subscribe("*")
        await _drain()

    async def _step(step: int, phase: str) -> None:
        clock.step = step
        if step in kills:
            if kill_handler is not None:
                # Cluster mode: the handler fails over one shard (kill,
                # journal-restore, reattach, probe resync); agents and
                # the auditor stay attached to the router throughout.
                # A handler may also return None — an *undetected* crash
                # whose recovery record arrives later through the health
                # monitor's step hook.
                recovery = await kill_handler(step)
                if recovery is not None:
                    recovery = dict(recovery)
                    recovery["step"] = step
                    restarts.append(recovery)
                fault_steps.add(step)
                await _drain()
            else:
                await _kill_and_restore(step)
        injector.advance(step)
        await _drain(4)

        # Crash transitions: kill at window start, revive (a *new*
        # process: fresh seqs, resync pending) at window end.
        for source_id in sorted(agents):
            is_down = injector.is_crashed(source_id, step)
            if is_down and source_id not in crashed:
                crashed.add(source_id)
                retired_stats.append(dict(agents[source_id].stats))
                await agents[source_id].close()
            elif not is_down and source_id in crashed:
                crashed.discard(source_id)
                dead = agents[source_id]
                revived = SourceAgent(
                    source_id, dead.items,
                    {name: truth[name] for name in dead.items})
                revived._resync_pending = set(revived.items)
                agents[source_id] = revived
                await _connect(revived)

        before = server.stats["refreshes_accepted"]
        for source_id in sorted(agents):
            if source_id in crashed:
                continue                      # a down source's world freezes
            agent = agents[source_id]
            updates = {item: traces[item].at(step) for item in agent.items}
            truth.update(updates)
            try:
                await agent.tick(updates)
            except TransportClosed:
                # Values are already applied locally; the reconnect marks
                # every item resync-pending, so the next tick (or a probe
                # answer) re-delivers them.
                await _connect(agent)
        await _drain()

        for source_id in sorted(agents):
            if source_id not in crashed:
                await _heartbeat(agents[source_id])
        await _drain()
        await server.check_leases()
        await server.check_retries()
        await _drain()

        if step_hook is not None:
            # Self-healing machinery runs *inside* the step, after the
            # traffic settles: the health monitor polls its heartbeat
            # deadlines and the migrator advances one phase.  Failovers
            # and cutovers silence/redirect the wire like a fault burst,
            # so the hook reports them and audits hold off for a margin.
            hook = await step_hook(step)
            if hook:
                if hook.get("fault"):
                    fault_steps.add(step)
                for record in hook.get("restarts") or ():
                    record = dict(record)
                    record["step"] = step
                    restarts.append(record)
            await _drain()

        refreshes_per_step.append(
            float(server.stats["refreshes_accepted"] - before))
        _note_faults()
        _track_degraded(step)
        recent = {step, step - 1} if audit_margin <= 1 else set(
            range(step - audit_margin + 1, step + 1))
        if not (recent & fault_steps):
            await _audit(step, phase)

    for step in range(1, last):
        await _step(step, "storm")

    # Recovery tail: the storm is over; every probe now lands, so the
    # degraded map must drain.  The tail length bounds recovery time.
    injector.enabled = False
    tail_budget = int(2 * (server.lease_duration or 1.0)) + 10
    tail_end = last
    for step in range(last, last + tail_budget):
        await _step(step, "recovery")
        tail_end = step
        if hold_tail is not None and hold_tail():
            # A migration is still mid-flight (or a failover pending):
            # keep stepping so it completes inside the bounded tail.
            continue
        if not server.suspect_since and not server._outstanding_dabs:
            break
    _track_degraded(tail_end + 1)              # close still-open episodes
    await _audit(tail_end, "final")

    final_degraded = dict(auditor.degraded)
    stats = server.server_stats()
    agent_totals: Dict[str, int] = {}
    for source_stats in retired_stats + [a.stats for a in agents.values()]:
        for key, value in source_stats.items():
            agent_totals[key] = agent_totals.get(key, 0) + value

    # Always present (``{"kills": 0}`` without a journal) so downstream
    # dashboards can key on the section unconditionally.
    recovery_section: Dict[str, Any] = {"kills": len(restarts)}
    if restarts and server.journal is None:
        # Cluster shard failovers: the journals live shard-side (the
        # router itself is stateless), so only the per-restore records
        # are reported here.
        recovery_section.update({
            "restarts": restarts,
            "records_replayed_total": sum(
                r.get("records_replayed", 0) for r in restarts),
            "recovery_seconds_max": max(
                (r.get("recovery_seconds", 0.0) for r in restarts),
                default=0.0),
        })
    if server.journal is not None:
        append_samples.extend(server.journal.append_seconds)
        recovery_section.update({
            "restarts": restarts,
            "records_replayed_total": sum(
                r["records_replayed"] for r in restarts),
            "recovery_seconds_max": max(
                (r["recovery_seconds"] for r in restarts), default=0.0),
            "journal_append_ms": latency_percentiles(
                [s * 1000.0 for s in append_samples], (50.0, 95.0, 99.0)),
            "journal": server.journal.stats(),
        })

    report = {
        "steps": last - 1,
        "tail_steps": tail_end - last + 1,
        "audits": audits,
        "audits_with_degraded": audits_with_degraded,
        "qab_violations_unexcused": len(unexcused),
        "qab_violations_excused_degraded": excused,
        "degraded_bound_exceeded": len(degraded_bound_exceeded),
        "violation_detail": unexcused[:10],
        "degraded_bound_exceeded_detail": degraded_bound_exceeded[:10],
        "final_degraded_queries": sorted(final_degraded),
        "fault_counts": dict(sorted(injector.counts.items())),
        "fault_events": len(injector.trace),
        "fault_trace_digest": injector.digest(),
        "recovery_steps": latency_percentiles(recovery_durations,
                                              (50.0, 95.0)),
        "recovery_episodes": len(recovery_durations),
        "recovery_steps_max": max(recovery_durations, default=0.0),
        "refresh_overhead_per_step": latency_percentiles(
            refreshes_per_step, (50.0, 95.0)),
        "refreshes_total": retired_refreshes + stats["refreshes_accepted"],
        "connect_give_ups": connect_give_ups,
        "coordinator_recovery": recovery_section,
        "agent_stats": agent_totals,
        "server_stats": stats,
    }

    await auditor.close()
    for agent in agents.values():
        await agent.close()
    await server.close()
    return report


def run_chaos_soak(
    schedule: Union[str, FaultSchedule] = "ci",
    steps: Optional[int] = None,
    queries: int = 6,
    items: int = 16,
    sources: int = 3,
    seed: int = 1,
    algorithm: str = "dual_dab",
    workload: str = "portfolio",
    lease_duration: float = 3.0,
    suspect_drift_rel: float = 0.05,
    audit_margin: int = 2,
    register_timeout: float = 0.25,
    output: Optional[str] = None,
    journal_dir: Optional[str] = None,
    kill_steps: Optional[Sequence[int]] = None,
    snapshot_every: int = 50,
    fsync: str = "always",
    shards: int = 1,
) -> Dict[str, Any]:
    """Run the chaos soak; returns (and optionally writes) the report.

    ``schedule`` is a profile name (``smoke``/``ci``/``heavy``/
    ``restart``/``shards``/``reshard``) or a custom
    :class:`FaultSchedule`;
    ``steps`` defaults to the profile's budget.  ``lease_duration`` is
    in logical steps.  ``journal_dir`` journals the coordinator and
    enables ``kill_steps``: at each listed step the server is dropped
    without a parting snapshot and a fresh one restores from disk
    mid-run (the ``restart`` profile defaults to two kills; a temporary
    directory is created when kills are requested without a
    ``journal_dir``).  ``shards > 1`` runs the same soak against a
    sharded cluster behind a
    :class:`~repro.service.cluster.router.ClusterCoordinator`; kills
    then fail over one *shard* at a time (rotating), restored from its
    own journal, while agents and the auditor stay attached to the
    router.  The run **fails** (``report["passed"] is False``) on any
    unexcused QAB violation, or if the degraded map has not drained by
    the end of the recovery tail.
    """
    if isinstance(schedule, str):
        schedule_name = schedule
        schedule, default_steps = named_schedule(schedule, seed=seed)
        steps = steps if steps is not None else default_steps
    else:
        schedule_name = "custom"
        steps = steps if steps is not None else 40
    if schedule_name == "reshard" and shards <= 1:
        raise ReproError(
            "the reshard schedule exercises live cross-shard migration; "
            "run it with shards > 1")
    if kill_steps is None:
        kill_steps = _DEFAULT_KILL_STEPS.get(schedule_name, ())
    if kill_steps and journal_dir is None:
        import tempfile

        journal_dir = tempfile.mkdtemp(prefix="repro-journal-")
    from repro.service.server import build_scenario_server

    clock = _StepClock()

    if shards > 1:
        from repro.service.cluster.router import build_scenario_cluster
        from repro.service.cluster.supervisor import ShardSupervisor

        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=shards, query_count=queries, item_count=items,
            source_count=sources, trace_length=steps + 2, seed=seed,
            algorithm=algorithm, workload=workload,
            journal_dir=journal_dir, snapshot_every=snapshot_every,
            fsync=fsync, clock=clock, lease_duration=lease_duration,
            suspect_drift_rel=suspect_drift_rel,
            dab_retry_policy=RetryPolicy(base_delay=1.0, backoff=1.5,
                                         max_delay=4.0, max_attempts=6),
            solver_breaker_factory=lambda sid: CircuitBreaker(
                failure_threshold=3, reset_timeout=6.0, clock=clock),
        )
        reshard = schedule_name == "reshard"
        kill_handler = None
        supervisor = None
        if kill_steps or reshard:
            supervisor = ShardSupervisor(cluster)
            active = list(cluster.decomposition.active_shards)
            rotation = {"next": 0}

            if reshard:
                async def kill_handler(step: int) -> None:
                    # Undetected crash: the router's plumbing keeps
                    # pointing at the corpse, and only the health
                    # monitor's heartbeat deadline brings the shard
                    # back — its recovery record arrives via step_hook.
                    sid = active[rotation["next"] % len(active)]
                    rotation["next"] += 1
                    await supervisor.crash(sid)
                    return None
            else:
                async def kill_handler(step: int) -> Dict[str, Any]:
                    sid = active[rotation["next"] % len(active)]
                    rotation["next"] += 1
                    return await supervisor.kill_and_restore(sid)
            if not kill_steps:
                kill_handler = None

        monitor = None
        migrator = None
        step_hook = None
        hold_tail = None
        if reshard:
            from repro.service.cluster.health import ShardHealthMonitor
            from repro.service.cluster.migration import ShardMigrator

            monitor = ShardHealthMonitor(cluster, supervisor, clock=clock,
                                         deadline=2.0, max_misses=2)
            migrator = ShardMigrator(cluster, clock=clock)

            async def step_hook(step: int) -> Dict[str, Any]:
                result: Dict[str, Any] = {"fault": False, "restarts": []}
                if step == _RESHARD_MIGRATE_STEP:
                    migrator.start(_plan_reshard_moves(cluster))
                record = await migrator.tick()
                if record is not None:
                    # Cutover: the map epoch bumped and buffered
                    # refreshes just flushed — hold audits for a margin.
                    result["fault"] = True
                for failover in await monitor.poll():
                    result["restarts"].append(failover)
                    result["fault"] = True
                return result

            def hold_tail() -> bool:
                return migrator.active or bool(monitor.suspected_at)

        injector = FaultInjector(schedule)
        report = asyncio.run(_run_async(
            server=cluster, scenario=scenario,
            item_to_source=item_to_source,
            injector=injector, clock=clock, steps=steps,
            audit_margin=audit_margin, register_timeout=register_timeout,
            kill_steps=kill_steps, kill_handler=kill_handler,
            step_hook=step_hook, hold_tail=hold_tail,
        ))
        report["shards"] = shards
        report["active_shards"] = list(cluster.decomposition.active_shards)
        report["cross_shard_queries"] = len(cluster.decomposition.cross_shard)
        report["schedule"] = schedule_name
        report["fault_kinds"] = schedule.fault_kinds()
        report["seed"] = seed
        report["queries"] = queries
        report["items"] = items
        report["sources"] = sources
        report["algorithm"] = algorithm
        report["workload"] = workload
        report["lease_duration_steps"] = lease_duration
        if journal_dir is not None:
            report["journal_dir"] = str(journal_dir)
            report["coordinator_recovery"]["kill_steps"] = sorted(
                int(s) for s in kill_steps)
        if reshard:
            completed = [r for r in migrator.records
                         if r.get("outcome") == "completed"]
            shard_fenced = sum(
                srv.stats.get("refreshes_rejected_stale_map_epoch", 0)
                for srv in cluster.shards.values())
            health = monitor.stats_snapshot()
            report["resharding"] = {
                "migrations": [dict(r) for r in migrator.records],
                "moves_requested": migrator.stats["moves_requested"],
                "moves_completed": migrator.stats["moves_completed"],
                "moves_abandoned": migrator.stats["moves_abandoned"],
                "deferrals": migrator.stats["deferrals"],
                "flushed_refreshes": sum(
                    r.get("flushed_refreshes", 0) for r in completed),
                "migration_steps": latency_percentiles(
                    [r["migration_steps"] for r in completed],
                    (50.0, 95.0)),
                "migration_ms": latency_percentiles(
                    [r["migration_seconds"] * 1000.0 for r in completed],
                    (50.0, 95.0, 99.0)),
                "final_map_epoch": cluster.map_epoch,
                "frames_rejected_by_fencing": {
                    "router": cluster.stats["fenced_frames_rejected"],
                    "shards": shard_fenced,
                },
                "refreshes_frozen": cluster.stats["refreshes_frozen"],
                "health": health,
                "failovers": health["failovers"],
                "detection_to_recovery_steps": latency_percentiles(
                    [e["detection_to_recovery"] for e in monitor.events],
                    (50.0, 95.0)),
            }
        report["passed"] = (
            report["qab_violations_unexcused"] == 0
            and not report["final_degraded_queries"]
            and (not reshard
                 or (migrator.stats["moves_abandoned"] == 0
                     and not migrator.active)))
        if output:
            path = Path(output)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(report, indent=2, sort_keys=True)
                            + "\n")
            report["output"] = str(path)
        return report

    def make_server():
        """One coordinator incarnation — the same scenario every time
        (seed-derived), journaled when ``journal_dir`` is set.  Journaled
        servers defer bootstrap to :meth:`restore`."""
        journal = (Journal(journal_dir, fsync=fsync,
                           snapshot_every=snapshot_every)
                   if journal_dir is not None else None)
        return build_scenario_server(
            query_count=queries, item_count=items, source_count=sources,
            trace_length=steps + 2, seed=seed, algorithm=algorithm,
            workload=workload,
            lease_duration=lease_duration,
            suspect_drift_rel=suspect_drift_rel,
            dab_retry_policy=RetryPolicy(base_delay=1.0, backoff=1.5,
                                         max_delay=4.0, max_attempts=6),
            solver_breaker=CircuitBreaker(failure_threshold=3,
                                          reset_timeout=6.0, clock=clock),
            clock=clock,
            journal=journal,
            bootstrap=journal is None,
        )

    server, scenario, item_to_source = make_server()
    if server.journal is not None:
        server.restore()
    injector = FaultInjector(schedule)
    report = asyncio.run(_run_async(
        server=server, scenario=scenario, item_to_source=item_to_source,
        injector=injector, clock=clock, steps=steps,
        audit_margin=audit_margin, register_timeout=register_timeout,
        server_factory=(lambda: make_server()[0]) if journal_dir else None,
        kill_steps=kill_steps,
    ))
    report["schedule"] = schedule_name
    report["fault_kinds"] = schedule.fault_kinds()
    report["seed"] = seed
    report["queries"] = queries
    report["items"] = items
    report["sources"] = sources
    report["algorithm"] = algorithm
    report["workload"] = workload
    report["lease_duration_steps"] = lease_duration
    if journal_dir is not None:
        report["journal_dir"] = str(journal_dir)
        report["coordinator_recovery"]["kill_steps"] = sorted(
            int(s) for s in kill_steps)
    report["passed"] = (report["qab_violations_unexcused"] == 0
                        and not report["final_degraded_queries"])
    if output:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        report["output"] = str(path)
    return report
