"""Load generator: N sources × M subscribers against a live coordinator.

``run_loadgen`` builds the same deterministic scenario the server was
launched with (same seed → same items, traces and queries on both sides),
spins up one :class:`SourceAgent` per source and M
:class:`ServiceClient` subscribers, replays ``duration`` trace steps
through the DAB filters, then audits the run:

* **throughput** — ticks/sec pushed through the agents' filters;
* **notify latency** — p50/p95/p99 of refresh-sent → notify-received;
* **refresh / recompute counts** — from the server's SNAPSHOT stats;
* **QAB violations** — the final served value of every query is checked
  against the ground truth evaluated at the agents' *current* (not just
  sent) values; fault-free this must be zero, because every unsent value
  is inside its primary DAB by construction (the paper's Theorem 1
  guarantee, exercised end to end over the wire).

The report is returned and, when ``output`` is given, written as JSON —
``benchmarks/results/BENCH_service.json`` in the CI flow.

Two attach modes: ``host``/``port`` drive a live ``repro serve`` process
over TCP; with ``server`` (or neither), everything runs in process over
the loopback transport — same protocol bytes, no sockets.
"""

from __future__ import annotations

import asyncio
import json
import time as _time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.service.agent import agents_for_scenario
from repro.service.client import ServiceClient, latency_percentiles


async def _run_async(
    server: "Any",
    scenario: "Any",
    item_to_source: Dict[str, int],
    subscriber_count: int,
    duration: int,
    tick_interval: float,
    host: Optional[str],
    port: Optional[int],
) -> Dict[str, Any]:
    over_tcp = host is not None and port is not None

    async def _attach():
        if over_tcp:
            from repro.service.transports import open_tcp_stream
            return await open_tcp_stream(host, port)
        return server.connect_loopback()

    agents = agents_for_scenario(scenario, item_to_source,
                                 timestamp_refreshes=True)
    for agent in agents.values():
        await agent.connect(await _attach())

    subscribers = []
    for _ in range(subscriber_count):
        client = ServiceClient(await _attach())
        await client.subscribe("*")
        subscribers.append(client)

    started = _time.perf_counter()
    sent = await asyncio.gather(*[
        agent.replay(scenario.traces, tick_interval=tick_interval,
                     max_steps=duration)
        for agent in agents.values()
    ])
    elapsed = _time.perf_counter() - started

    # Let in-flight notifies drain before auditing.
    await asyncio.sleep(0.05 if not over_tcp else 0.2)

    auditor = ServiceClient(await _attach())
    served = await auditor.subscribe("*")
    stats = auditor.stats_seen

    truth = {}
    for agent in agents.values():
        truth.update(agent.values)
    violations = []
    for query in scenario.queries:
        true_value = query.evaluate(truth)
        error = abs(served[query.name] - true_value)
        if error > query.qab * (1.0 + 1e-9) + 1e-12:
            violations.append({"query": query.name, "error": error,
                               "qab": query.qab})

    latencies = [sample for client in subscribers for sample in client.latencies]
    ticks = sum(agent.stats["ticks"] for agent in agents.values())
    report = {
        "sources": len(agents),
        "subscribers": subscriber_count,
        "queries": len(scenario.queries),
        "items": len(item_to_source),
        "duration_steps": duration,
        "transport": "tcp" if over_tcp else "loopback",
        "elapsed_seconds": elapsed,
        "ticks": ticks,
        "ticks_per_second": ticks / elapsed if elapsed > 0 else 0.0,
        "refreshes_sent": sum(s for s in sent),
        "refreshes_filtered": sum(agent.stats["refreshes_filtered"]
                                  for agent in agents.values()),
        "notifies_received": sum(client.notifies_received
                                 for client in subscribers),
        "notify_latency_seconds": latency_percentiles(latencies),
        "latency_samples": len(latencies),
        "server_stats": stats,
        "qab_violations": len(violations),
        "qab_violation_detail": violations[:10],
    }

    await auditor.close()
    for client in subscribers:
        await client.close()
    for agent in agents.values():
        await agent.close()
    if server is not None:
        await server.close()
    return report


def run_loadgen(
    sources: int = 8,
    queries: int = 100,
    items: int = 40,
    duration: int = 30,
    subscribers: int = 4,
    tick_interval: float = 0.0,
    seed: int = 0,
    algorithm: str = "dual_dab",
    workload: str = "portfolio",
    host: Optional[str] = None,
    port: Optional[int] = None,
    output: Optional[str] = None,
    trace_length: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the load generator; see the module docstring for semantics.

    ``duration`` counts trace steps replayed per source.  With
    ``host``/``port`` the scenario is rebuilt locally (the server must
    have been launched with the same ``--queries/--items/--sources/--seed``)
    and driven over TCP; otherwise an in-process server is built and the
    whole run goes over the loopback transport.
    """
    trace_length = max(trace_length or 0, duration + 2)
    over_tcp = host is not None and port is not None
    if over_tcp:
        # The live server is authoritative for planning; this side only
        # needs the (same-seed, hence identical) scenario and routing.
        from repro.simulation.source import assign_items_to_sources
        from repro.workloads import scaled_scenario

        scenario = scaled_scenario(
            query_count=queries, item_count=items, trace_length=trace_length,
            source_count=sources, query_kind=workload, seed=seed)
        item_to_source = assign_items_to_sources(
            sorted({v for q in scenario.queries for v in q.variables}),
            sources)
        server = None
    else:
        from repro.service.server import build_scenario_server

        server, scenario, item_to_source = build_scenario_server(
            query_count=queries, item_count=items, source_count=sources,
            trace_length=trace_length, seed=seed, algorithm=algorithm,
            workload=workload,
        )
    report = asyncio.run(_run_async(
        server=None if over_tcp else server,
        scenario=scenario, item_to_source=item_to_source,
        subscriber_count=subscribers, duration=duration,
        tick_interval=tick_interval, host=host, port=port,
    ))
    report["seed"] = seed
    report["algorithm"] = algorithm
    report["workload"] = workload
    if output:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        report["output"] = str(path)
    return report
