"""Shard failover: kill a coordinator shard, restore it from its journal.

The :class:`ShardSupervisor` drives the PR-6 durability machinery at the
cluster level.  Each shard owns a write-ahead journal + snapshot
directory (``<journal_dir>/shard-<i>``); killing a shard drops its
in-memory state without a final snapshot (simulating a crash), and
restoring rebuilds the server from the same scenario recipe
(``cluster.make_shard``), replays its journal, and re-attaches it to the
router.  Re-attachment forces a probe sweep toward the real sources so
refreshes routed while the shard was dead — lost from its view, already
applied everywhere else — are healed by resync refreshes with bumped
sequence numbers, which the surviving shards dedup harmlessly.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, Optional

from repro.exceptions import ReproError
from repro.service.cluster.router import ClusterCoordinator


class ShardSupervisor:
    """Kill and journal-restore shards of a :class:`ClusterCoordinator`."""

    def __init__(self, cluster: ClusterCoordinator,
                 wall_clock: Callable[[], float] = _time.perf_counter):
        if cluster.make_shard is None:
            raise ReproError(
                "cluster was built without a shard factory; "
                "build it with build_scenario_cluster(journal_dir=...) "
                "to enable failover")
        self.cluster = cluster
        #: wall time for recovery-latency measurement (the cluster clock
        #: may be a logical step clock under the chaos soak).
        self.wall_clock = wall_clock
        self.recoveries: list = []

    def _require_journaled(self, sid: int) -> None:
        server = self.cluster.shards.get(sid)
        if server is None:
            raise ReproError(f"unknown shard {sid}")
        if server.journal is None:
            raise ReproError(
                f"shard {sid} runs without a journal; failover needs "
                "build_scenario_cluster(journal_dir=...)")

    async def kill(self, sid: int) -> None:
        """Crash one shard: close without a final snapshot, detach its
        router plumbing.  The cluster keeps serving — the dead shard's
        partials go stale (snapshot gathers fall back to them) until
        :meth:`restore`."""
        self._require_journaled(sid)
        server = self.cluster.shards[sid]
        await self.cluster._detach_shard(sid)
        await server.close(final_snapshot=False)

    async def restore(self, sid: int) -> Dict[str, Any]:
        """Rebuild shard *sid* from its journal and re-attach it."""
        if self.cluster.make_shard is None:  # pragma: no cover - guarded in init
            raise ReproError("no shard factory")
        started = self.wall_clock()
        server = self.cluster.make_shard(sid)
        recovery = server.restore()
        await self.cluster.reattach_shard(sid, server)
        record: Dict[str, Any] = {
            "shard": sid,
            "recovery_seconds": self.wall_clock() - started,
            "records_replayed": (recovery or {}).get("records_replayed", 0),
            "snapshot_loaded": (recovery or {}).get("snapshot_index") is not None,
        }
        if recovery:
            record["restore"] = dict(recovery)
        self.recoveries.append(record)
        return record

    async def kill_and_restore(self, sid: int) -> Dict[str, Any]:
        """One full failover cycle; returns the recovery record with the
        end-to-end (kill → serving again) wall time included."""
        started = self.wall_clock()
        await self.kill(sid)
        record = await self.restore(sid)
        record["failover_seconds"] = self.wall_clock() - started
        return record
