"""Shard failover: kill a coordinator shard, restore it from its journal.

The :class:`ShardSupervisor` drives the PR-6 durability machinery at the
cluster level.  Each shard owns a write-ahead journal + snapshot
directory (``<journal_dir>/shard-<i>``); killing a shard drops its
in-memory state without a final snapshot (simulating a crash), and
restoring rebuilds the server from the same scenario recipe
(``cluster.make_shard``), replays its journal, and re-attaches it to the
router.  Re-attachment forces a probe sweep toward the real sources so
refreshes routed while the shard was dead — lost from its view, already
applied everywhere else — are healed by resync refreshes with bumped
sequence numbers, which the surviving shards dedup harmlessly.

Two kill flavours model two failure shapes:

* :meth:`kill` — a *detected* crash: the router's plumbing for the
  shard is detached immediately (the operator-driven PR-9 path).
* :meth:`crash` — an *undetected* crash: the server dies (refusing all
  further connections) but the router's streams are left pointing at
  the corpse.  This is what a real process death looks like before any
  failure detector notices; the cluster's
  :class:`~repro.service.cluster.health.ShardHealthMonitor` exists to
  turn this into a :meth:`fail_over` with no operator in the loop.
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Any, Callable, Deque, Dict, Set

from repro.exceptions import ReproError
from repro.service.cluster.router import ClusterCoordinator

#: How many recovery records the supervisor retains.  The full history
#: of a long-lived cluster is unbounded; dashboards read the bounded
#: tail through ``server_stats()["failover"]`` instead.
RECOVERY_HISTORY_LIMIT = 64


class ShardSupervisor:
    """Kill and journal-restore shards of a :class:`ClusterCoordinator`."""

    def __init__(self, cluster: ClusterCoordinator,
                 wall_clock: Callable[[], float] = _time.perf_counter):
        if cluster.make_shard is None:
            raise ReproError(
                "cluster was built without a shard factory; "
                "build it with build_scenario_cluster(journal_dir=...) "
                "to enable failover")
        self.cluster = cluster
        #: wall time for recovery-latency measurement (the cluster clock
        #: may be a logical step clock under the chaos soak).
        self.wall_clock = wall_clock
        #: Bounded recovery history (newest last); totals live in
        #: :meth:`stats` so nothing is lost when old records roll off.
        self.recoveries: Deque[Dict[str, Any]] = deque(
            maxlen=RECOVERY_HISTORY_LIMIT)
        #: Shards currently down (killed or crashed, not yet restored).
        self._dead: Set[int] = set()
        #: sid -> True when the shard died via :meth:`crash` (its router
        #: plumbing is still attached and must be detached on failover).
        self._undetected: Dict[int, bool] = {}
        self._kills = 0
        self._restores = 0
        # Let the cluster's stats plane find us (server_stats exposes
        # the bounded history + totals under "failover").
        cluster.supervisor = self

    def _require_journaled(self, sid: int) -> None:
        server = self.cluster.shards.get(sid)
        if server is None:
            raise ReproError(f"unknown shard {sid}")
        if server.journal is None:
            raise ReproError(
                f"shard {sid} runs without a journal; failover needs "
                "build_scenario_cluster(journal_dir=...)")

    async def kill(self, sid: int) -> None:
        """Crash one shard: close without a final snapshot, detach its
        router plumbing.  The cluster keeps serving — the dead shard's
        partials go stale (snapshot gathers fall back to them) until
        :meth:`restore`."""
        if sid in self._dead:
            raise ReproError(f"shard {sid} is already down")
        self._require_journaled(sid)
        server = self.cluster.shards[sid]
        await self.cluster._detach_shard(sid)
        await server.close(final_snapshot=False)
        self._dead.add(sid)
        self._undetected[sid] = False
        self._kills += 1

    async def crash(self, sid: int) -> None:
        """Kill one shard *without telling the router*: the server dies
        (``closed`` — it refuses every further connection) but the
        router's upstream/trunk streams keep pointing at the corpse.
        Only the health monitor's heartbeat deadline can notice; this is
        the failure shape the self-healing tentpole exists for."""
        if sid in self._dead:
            raise ReproError(f"shard {sid} is already down")
        self._require_journaled(sid)
        server = self.cluster.shards[sid]
        await server.close(final_snapshot=False)
        self._dead.add(sid)
        self._undetected[sid] = True
        self._kills += 1

    async def restore(self, sid: int) -> Dict[str, Any]:
        """Rebuild shard *sid* from its journal and re-attach it.

        Idempotence guard: restoring a shard that is not down (never
        killed, or already restored) raises a clear :class:`ReproError`
        instead of silently double-building a second live server for
        the same journal directory."""
        if sid not in self._dead:
            if sid in self.cluster.shards:
                raise ReproError(
                    f"shard {sid} is alive; refusing to restore over a "
                    "live shard (double restore?)")
            raise ReproError(f"unknown shard {sid}")
        if self.cluster.make_shard is None:  # pragma: no cover - guarded in init
            raise ReproError("no shard factory")
        started = self.wall_clock()
        server = self.cluster.make_shard(sid)
        recovery = server.restore()
        await self.cluster.reattach_shard(sid, server)
        self._dead.discard(sid)
        self._undetected.pop(sid, None)
        self._restores += 1
        record: Dict[str, Any] = {
            "shard": sid,
            "recovery_seconds": self.wall_clock() - started,
            "records_replayed": (recovery or {}).get("records_replayed", 0),
            "snapshot_loaded": (recovery or {}).get("snapshot_index") is not None,
        }
        if recovery:
            record["restore"] = dict(recovery)
        self.recoveries.append(record)
        return record

    async def kill_and_restore(self, sid: int) -> Dict[str, Any]:
        """One full failover cycle; returns the recovery record with the
        end-to-end (kill → serving again) wall time included."""
        started = self.wall_clock()
        await self.kill(sid)
        record = await self.restore(sid)
        record["failover_seconds"] = self.wall_clock() - started
        return record

    async def fail_over(self, sid: int) -> Dict[str, Any]:
        """Heal one down-or-unresponsive shard, however it died.

        The health monitor's action path: a :meth:`crash`-style corpse
        still has router plumbing attached — detach it first — while a
        live-but-suspected shard goes through a clean :meth:`kill`.
        Either way the shard is then journal-restored and re-attached
        (which probes the sources for resync)."""
        started = self.wall_clock()
        if sid in self._dead:
            if self._undetected.get(sid):
                # The router still holds streams into the corpse; tear
                # them down before rebuilding.
                await self.cluster._detach_shard(sid)
                self._undetected[sid] = False
        else:
            await self.kill(sid)
        record = await self.restore(sid)
        record["failover_seconds"] = self.wall_clock() - started
        return record

    def is_down(self, sid: int) -> bool:
        return sid in self._dead

    def stats(self) -> Dict[str, Any]:
        """Totals plus the bounded recovery tail (for ``server_stats``)."""
        return {
            "kills": self._kills,
            "restores": self._restores,
            "down_shards": sorted(self._dead),
            "history_limit": RECOVERY_HISTORY_LIMIT,
            "recoveries": [dict(record) for record in self.recoveries],
        }
