"""Epoch-fenced live resharding: move items between shards, online.

The :class:`ShardMigrator` runs the per-item migration protocol on top
of the router's freeze/fence primitives.  Each item move is a two-tick
state machine — deliberately split across a step boundary so audits and
fault injection see the mid-flight state:

``FREEZE`` tick
    * the router freezes the item: refreshes for it are buffered, not
      routed (a frame can never race the hand-off);
    * every query reading the item is flagged *migration-degraded*
      (honest widened bound — answers over in-flight items are never
      silently stale);
    * the item's value, owning source and accepted-seq high-water mark
      are read from the current owner and *adopted* by the target shard
      (a journaled hand-off: a replayed target restores the same dedup
      floor it was handed);
    * the ``B/k`` decompositions of the affected cross-shard queries
      are recomputed under the post-move map and the live shards' banks
      are edited in place (remove departing sub-queries, add arriving
      ones) — every sub-budget still sums to ``B``, so recombined error
      stays inside the query's bound throughout.

``CUTOVER`` tick
    * the router atomically installs the new :class:`ShardMap` — the
      map epoch bumps, and from here every routed refresh is stamped
      with the new epoch while both router and shards reject
      stale-epoch frames (a lagging shard can never double-own the
      item);
    * live shards learn the new epoch, fresh upstream registrations are
      opened where the move created new (shard, source) needs, stale
      DAB votes from ex-readers are dropped, the buffered refreshes are
      flushed under the new map, and the degraded flags clear.

A move whose endpoints are dead is *deferred* (requeued) rather than
attempted — the health monitor's failover brings the shard back, the
migrator retries on a later tick, and a permanently-missing shard
abandons the move after :data:`MAX_DEFERRALS` with an explicit record
instead of wedging the queue.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Mapping, Optional, Set

from repro.exceptions import ReproError, SimulationError
from repro.filters.shard_budget import decompose_query
from repro.service.cluster.router import ClusterCoordinator

#: Honest widening applied to a query while one of its items is
#: mid-flight: the recombined answer may briefly mix pre- and post-move
#: partials, so the served bound doubles (same shape as the suspect
#: widening — a flagged, conservative envelope, never silent staleness).
MIGRATION_WIDEN_FACTOR = 2.0

#: A move both of whose endpoints stay dead is requeued this many times
#: before it is abandoned with an explicit record.
MAX_DEFERRALS = 64


class ShardMigrator:
    """Tick-driven, resumable item-migration state machine."""

    def __init__(self, cluster: ClusterCoordinator,
                 clock: Optional[Callable[[], float]] = None,
                 wall_clock: Callable[[], float] = _time.perf_counter):
        self.cluster = cluster
        self.clock = clock if clock is not None else cluster.clock
        self.wall_clock = wall_clock
        #: moves not yet started: (item, target, deferrals), FIFO.
        self._queue: List[List[Any]] = []
        #: the in-flight move (None between items).
        self._current: Optional[Dict[str, Any]] = None
        #: completed / abandoned move records, in completion order.
        self.records: List[Dict[str, Any]] = []
        self.stats: Dict[str, int] = {
            "moves_requested": 0,
            "moves_completed": 0,
            "moves_abandoned": 0,
            "moves_noop": 0,
            "deferrals": 0,
            "ticks": 0,
        }

    # -- queueing -----------------------------------------------------------------

    def start(self, moves: Mapping[str, int]) -> int:
        """Queue *moves* (item -> target shard); returns how many were
        queued.  Moves to the item's current owner are dropped as no-ops
        (minimal movement starts here); unknown items or out-of-range
        targets are rejected up front."""
        queued = 0
        for item in sorted(moves):
            target = int(moves[item])
            if item not in self.cluster._item_shards:
                raise ReproError(f"cannot migrate unknown item {item!r}")
            if not 0 <= target < self.cluster.shard_map.shards:
                raise ReproError(
                    f"cannot migrate {item!r} to shard {target}: map has "
                    f"{self.cluster.shard_map.shards} shards")
            self.stats["moves_requested"] += 1
            if self.cluster.shard_map.shard_of(item) == target:
                self.stats["moves_noop"] += 1
                continue
            self._queue.append([item, target, 0])
            queued += 1
        return queued

    @property
    def active(self) -> bool:
        return self._current is not None or bool(self._queue)

    # -- liveness helpers ---------------------------------------------------------

    def _is_live(self, sid: int) -> bool:
        server = self.cluster.shards.get(sid)
        if server is None:
            return False
        if getattr(server, "closed", False):
            return False
        supervisor = self.cluster.supervisor
        if supervisor is not None and supervisor.is_down(sid):
            return False
        return True

    def _defer(self, item: str, target: int, deferrals: int,
               reason: str) -> None:
        self.stats["deferrals"] += 1
        if deferrals + 1 >= MAX_DEFERRALS:
            self.stats["moves_abandoned"] += 1
            self.records.append({
                "item": item, "to": target, "outcome": "abandoned",
                "reason": reason, "deferrals": deferrals + 1,
            })
            return
        self._queue.append([item, target, deferrals + 1])

    # -- the state machine --------------------------------------------------------

    async def tick(self) -> Optional[Dict[str, Any]]:
        """Advance the migration by one phase.  Returns the completed
        move record when this tick was a cutover, else ``None``.

        One phase per tick is deliberate: the freeze → cutover window
        spans a step boundary, so the chaos soak can kill a shard *mid-
        migration* and audits observe the frozen/degraded state."""
        self.stats["ticks"] += 1
        if self._current is not None:
            return await self._cutover()
        # A deferred move re-joins the queue tail; bounding the scan to
        # the tick's starting length makes "everything deferred" cost
        # one pass, not a 64-deferral spin inside a single tick.
        for _ in range(len(self._queue)):
            if not self._queue:
                break
            item, target, deferrals = self._queue.pop(0)
            if self.cluster.shard_map.shard_of(item) == target:
                self.stats["moves_noop"] += 1
                continue
            if await self._freeze(item, target, deferrals):
                return None
        return None

    async def _freeze(self, item: str, target: int, deferrals: int) -> bool:
        """Phase 1 for one item; returns True when the item is now
        frozen mid-flight (False = deferred, try the next queued move)."""
        cluster = self.cluster
        owner = cluster.shard_map.shard_of(item)
        if not self._is_live(owner):
            self._defer(item, target, deferrals, f"owner shard {owner} down")
            return False
        if not self._is_live(target):
            self._defer(item, target, deferrals, f"target shard {target} down")
            return False

        started_wall = self.wall_clock()
        started_at = self.clock()
        owner_server = cluster.shards[owner]
        value = owner_server.core.cache.get(item)
        if value is None:
            # The owner never saw the item (possible right after its own
            # journal restore); any live reader's mirror is as good.
            for sid in cluster._item_shards.get(item, ()):
                if self._is_live(sid):
                    mirror = cluster.shards[sid].core.cache.get(item)
                    if mirror is not None:
                        value = mirror
                        break
        if value is None:
            self._defer(item, target, deferrals, "no live copy of the value")
            return False
        seq_floor = owner_server.last_seq.get(item, 0)
        source_id = cluster.item_to_source.get(item)

        new_map = cluster.shard_map.rebalance({item: target})
        affected = cluster.decomposition.queries_reading(item)
        updated = {
            name: decompose_query(cluster.decomposition.decompositions[name].query,
                                  new_map.shard_of)
            for name in affected
        }

        # Refuse a move that would have to strip the last query off a
        # live shard mid-edit (the coordinator core needs >= 1 query);
        # such moves complete once the rest of the bank rebalances.
        for name in affected:
            old_dec = cluster.decomposition.decompositions[name]
            for sid, old_sub in old_dec.sub_queries.items():
                if not self._is_live(sid):
                    continue
                if old_sub == updated[name].sub_queries.get(sid):
                    continue
                if len(cluster.shards[sid].core.queries) == 1:
                    self._defer(item, target, deferrals,
                                f"move would empty shard {sid}'s bank")
                    return False

        # From here the move commits: freeze first so no refresh can
        # slip between the value read above and the hand-off below.
        cluster.freeze_item(item)
        cluster.set_migration_degraded({
            name: updated[name].query.qab * MIGRATION_WIDEN_FACTOR
            for name in affected
        })

        # Hand the item to its new owner, then edit the live banks to
        # match the post-move decomposition (sub-budgets always sum to
        # the query's B — soundness holds through the whole window).
        edited: Set[int] = set()
        for name in affected:
            old_dec = cluster.decomposition.decompositions[name]
            new_dec = updated[name]
            for sid in sorted(set(old_dec.sub_queries) | set(new_dec.sub_queries)):
                if not self._is_live(sid):
                    continue
                old_sub = old_dec.sub_queries.get(sid)
                new_sub = new_dec.sub_queries.get(sid)
                if old_sub == new_sub:
                    continue
                server = cluster.shards[sid]
                if old_sub is not None:
                    server.core.remove_query(name)
                if new_sub is not None:
                    for needed in new_sub.variables:
                        if needed in server.core.cache:
                            continue
                        held = cluster.item_to_source.get(needed)
                        floor = (owner_server.last_seq.get(needed, 0)
                                 if needed == item else
                                 cluster._seq_floors.get(needed, 0))
                        donor = value if needed == item else None
                        if donor is None:
                            for other in cluster._item_shards.get(needed, ()):
                                if self._is_live(other):
                                    donor = cluster.shards[other].core.cache.get(needed)
                                    if donor is not None:
                                        break
                        server.adopt_item(needed, float(donor or 0.0),
                                          source_id=held, seq_floor=floor)
                    server.core.add_query(new_sub)
                edited.add(sid)

        self._current = {
            "item": item, "from": owner, "to": target,
            "new_map": new_map, "updated": updated,
            "affected": list(affected), "edited_shards": sorted(edited),
            "deferrals": deferrals,
            "started_at": started_at, "started_wall": started_wall,
        }
        return True

    async def _cutover(self) -> Dict[str, Any]:
        """Phase 2: install the new map, fence, flush, unflag."""
        cluster = self.cluster
        state = self._current
        assert state is not None
        item = state["item"]
        new_map = state["new_map"]

        cluster.apply_cutover(new_map, state["updated"])
        for sid in sorted(cluster.shards):
            if self._is_live(sid):
                cluster.shards[sid].advance_map_epoch(new_map.epoch)

        # The move may have created brand-new (shard, source) needs, or
        # extended existing registrations; re-open the impersonated
        # streams for every shard whose bank was edited (replacement is
        # idempotent — _open_upstream tears down the old pair stream).
        for sid in state["edited_shards"]:
            if not self._is_live(sid):
                continue
            for source_id, items in sorted(
                    cluster._sources_for_shard(sid).items()):
                await cluster._open_upstream(sid, source_id, items)

        cluster.drop_stale_votes(item)
        flushed = await cluster.unfreeze_item(item)
        cluster.clear_migration_degraded(state["affected"])

        self._current = None
        self.stats["moves_completed"] += 1
        record = {
            "item": item, "from": state["from"], "to": state["to"],
            "outcome": "completed",
            "epoch": new_map.epoch,
            "queries": list(state["affected"]),
            "deferrals": state["deferrals"],
            "flushed_refreshes": flushed,
            "migration_steps": self.clock() - state["started_at"],
            "migration_seconds": self.wall_clock() - state["started_wall"],
        }
        self.records.append(record)
        return record

    def stats_snapshot(self) -> Dict[str, Any]:
        return {
            **self.stats,
            "queued": len(self._queue),
            "in_flight": (self._current or {}).get("item"),
            "records": [dict(record) for record in self.records],
        }
