"""The shard router: one cluster front-end over N coordinator shards.

A :class:`ClusterCoordinator` is a pure protocol peer — it speaks the
same framed wire protocol as :class:`CoordinatorServer` to the outside
world (sources register, push REFRESH/HEARTBEAT; subscribers QUERY_SUB
and receive NOTIFY/SNAPSHOT), and it speaks the same protocol *inward*
to each shard over in-process loopback streams.  No shard knows it is
clustered; no source or subscriber knows there is more than one
coordinator.  The pieces:

**Item routing.**  Items are partitioned by the stable CRC32 hash of
:mod:`repro.service.cluster.routing`.  A query's terms are grouped by
home shard (:mod:`repro.filters.shard_budget`) and each home shard runs
the sub-query under the paper's ``B/k`` Half-and-Half budget.  An item
referenced by a sub-query homed elsewhere is *mirrored*: the router
forwards its refreshes to every shard whose bank reads it, so the
forwarding table is ``items_needed`` (owner ∪ mirrors), not bare
ownership.

**Source impersonation.**  For every (shard, source) pair the router
holds a loopback stream registered *as that source* for the items the
shard needs.  Inbound REFRESH frames are fanned to the owning streams
verbatim; HEARTBEATs go to every shard holding the source's items; the
shards' DAB_UPDATE replies (bounds, probes) flow back through the same
streams.

**DAB min-merge.**  Each shard programs primary DABs for *its* view of
an item.  The router takes the min bound across shards — the only
window every shard's guarantee survives — and forwards it to the real
source under its own per-item epoch counter, bumped only on material
change (the core's 1e-9 relative tolerance).  Toward real sources the
router runs the server's msg_id/ack retry loop; toward shards it acks
instantly (loopback is lossless).

**Partial recombination.**  One wildcard subscription per shard feeds a
last-partial table ``{query: {shard: value}}``; a shard NOTIFY
recombines its queries by summing home-shard partials in sorted shard
order and fans the full values to downstream subscribers through the
server's bounded-queue/slow-consumer-eviction machinery.  Soundness is
the ``B/k`` triangle inequality; a query homed on a single shard passes
that shard's value through bit-identically.  SNAPSHOT requests gather a
*fresh* snapshot from every shard (error ≤ Σ B/k = B) rather than
serving possibly-stale partials.

**Degraded honesty.**  Shards keep their own staleness leases; the
router forwards heartbeats and probe traffic, and merges per-shard
degraded maps: a query is degraded iff any home shard flags it, with
the honestly-widened total ``Σ_s (widened_s or B/k)`` over home shards.
"""

from __future__ import annotations

import asyncio
import os
import time as _time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import ReproError
from repro.filters.shard_budget import BankDecomposition, decompose_bank, recombine
from repro.service import protocol
from repro.service.cluster.routing import ShardMap
from repro.service.core import _DAB_CHANGE_REL_TOL
from repro.service.protocol import MessageType, ProtocolError
from repro.service.resilience import RetryPolicy
from repro.service.server import (
    DEFAULT_NOTIFY_QUEUE_LIMIT,
    TRUNK_QUEUE_LIMIT,
    CoordinatorServer,
    _Subscriber,
)
from repro.service.transports import MessageStream, TransportClosed, loopback_pair

#: How long a snapshot gather waits per shard before falling back to the
#: last known partials (a dead shard mid-failover must not hang audits).
SNAPSHOT_GATHER_TIMEOUT = 5.0

#: Floor for each shard's notify-queue limit toward its single
#: subscriber, the router's aggregation trunk.  A burst that evicts an
#: ordinary slow subscriber must *not* evict the trunk — that silently
#: freezes the shard's partials — so the trunk rides a much deeper queue
#: than user-facing subscribers and the router re-subscribes if it is
#: ever cut anyway.  Same floor the servers grant ``trunk=True``
#: subscriptions (brokers' upstreams) on the wire.
SHARD_TRUNK_QUEUE_LIMIT = TRUNK_QUEUE_LIMIT

#: How much a *suspected* (unresponsive, not yet failed-over) shard's
#: ``B/k`` sub-budget is widened in the merged degraded map.  While a
#: shard is silent the router cannot see its widened lease bounds, so it
#: substitutes this documented heuristic — the same honesty contract as
#: the lease machinery's drift widening: served answers carry a bound
#: the cluster can actually promise, never silent staleness.  The soak
#: audit excuses flagged queries whatever the factor; 2.0 mirrors the
#: one-missed-refresh-per-item worst case the failure detector's
#: deadline tolerates before firing.
SUSPECT_WIDEN_FACTOR = 2.0


class ClusterCoordinator:
    """Route sources and subscribers across coordinator shards."""

    def __init__(
        self,
        shards: Mapping[int, CoordinatorServer],
        decomposition: BankDecomposition,
        shard_map: ShardMap,
        item_to_source: Mapping[str, int],
        queries: Sequence[Any] = (),
        clock: Callable[[], float] = _time.time,
        notify_queue_limit: int = DEFAULT_NOTIFY_QUEUE_LIMIT,
        writer_join_timeout: float = 1.0,
        dab_retry_policy: Optional[RetryPolicy] = None,
        make_shard: Optional[Callable[[int], CoordinatorServer]] = None,
    ):
        self.shards: Dict[int, CoordinatorServer] = dict(shards)
        self.decomposition = decomposition
        self.shard_map = shard_map
        self.item_to_source = dict(item_to_source)
        #: the original (pre-decomposition) query bank, for callers that
        #: audit recombined values against it.
        self.queries = list(queries)
        self.clock = clock
        self.notify_queue_limit = int(notify_queue_limit)
        self.writer_join_timeout = float(writer_join_timeout)
        self.dab_retry_policy = dab_retry_policy
        #: rebuilds one shard server (same scenario, same journal path)
        #: — the supervisor's failover hook.
        self.make_shard = make_shard
        self.started = False

        self._home_shards: Dict[str, Tuple[int, ...]] = {
            name: dec.home_shards
            for name, dec in decomposition.decompositions.items()}
        self._sub_qab: Dict[str, Dict[int, float]] = {
            name: {sid: dec.sub_qab(sid) for sid in dec.home_shards}
            for name, dec in decomposition.decompositions.items()}
        item_shards: Dict[str, List[int]] = {}
        for sid, items in decomposition.items_needed.items():
            for item in items:
                item_shards.setdefault(item, []).append(sid)
        self._item_shards: Dict[str, Tuple[int, ...]] = {
            item: tuple(sorted(sids)) for item, sids in item_shards.items()}

        # upstream plumbing (router -> shards)
        self._up_streams: Dict[Tuple[int, int], MessageStream] = {}
        self._up_tasks: Dict[Tuple[int, int], asyncio.Task] = {}
        self._sub_streams: Dict[int, MessageStream] = {}
        self._sub_tasks: Dict[int, asyncio.Task] = {}
        self._snapshot_waiters: Dict[int, List[asyncio.Future]] = {}

        # DAB merge state
        self._shard_bounds: Dict[str, Dict[int, float]] = {}
        self._effective_bounds: Dict[str, float] = {}
        self.epochs: Dict[str, int] = {}
        #: per-item accepted-seq high-water marks observed at the router
        #: (floors for restarted sources; the shards remain the dedup
        #: authority).
        self._seq_floors: Dict[str, int] = {}

        # aggregation state
        self._partials: Dict[str, Dict[int, float]] = {}
        self._shard_degraded: Dict[int, Dict[str, float]] = {}
        self._last_degraded_keys: frozenset = frozenset()

        # health / resharding state
        #: sid -> clock() of the last frame seen on the shard's trunk
        #: (or probe reply); the failure detector's only evidence.
        self.shard_last_seen: Dict[int, float] = {}
        #: shards the health monitor currently suspects: every query
        #: they home is served degraded (widened honest bounds) until
        #: failover completes and the trunk shows life again.
        self._suspect_shards: Set[int] = set()
        #: item -> refresh frames buffered while the item migrates
        #: between shards; flushed (re-routed under the new map) at
        #: cutover.
        self._frozen_items: Dict[str, List[Dict[str, Any]]] = {}
        #: query -> widened bound while one of its items is mid-flight.
        self._migration_degraded: Dict[str, float] = {}
        #: set by ShardSupervisor / ShardHealthMonitor when attached, so
        #: server_stats can surface their bounded histories.
        self.supervisor: Optional[Any] = None
        self.health: Optional[Any] = None

        # downstream plumbing (real sources and subscribers)
        self._source_streams: Dict[int, MessageStream] = {}
        self._subscribers: Dict[int, _Subscriber] = {}
        self._sub_counter = 0
        self._outstanding_dabs: Dict[int, Dict[str, Any]] = {}
        self._dab_msg_counter = 0
        self._handler_tasks: Set[asyncio.Task] = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._maintenance_task: Optional[asyncio.Task] = None
        self.listen_address: Optional[Tuple[str, int]] = None
        #: kept ``None`` on purpose: the *shards* journal; soak tooling
        #: checks this attribute to decide whether the single-node
        #: journal bookkeeping applies.
        self.journal = None

        self.stats = {
            "refreshes_accepted": 0,
            "refreshes_routed": 0,
            "refreshes_unroutable": 0,
            "heartbeats_received": 0,
            "heartbeats_forwarded": 0,
            "notifies_sent": 0,
            "partial_notifies": 0,
            "dab_updates_sent": 0,
            "dab_acks_received": 0,
            "dab_retries": 0,
            "dab_retries_exhausted": 0,
            "probes_forwarded": 0,
            "slow_consumer_evictions": 0,
            "protocol_errors": 0,
            "sources_registered": 0,
            "subscribers": 0,
            "shard_frame_mismatches": 0,
            "shard_reattachments": 0,
            "shard_resubscribes": 0,
            "snapshot_gathers": 0,
            "snapshot_gather_fallbacks": 0,
            "fenced_frames_rejected": 0,
            "refreshes_frozen": 0,
        }
        self._closing = False

    # -- facade properties (soak/loadgen compatibility) ---------------------------

    @property
    def lease_duration(self) -> Optional[float]:
        durations = [srv.lease_duration for srv in self.shards.values()
                     if srv.lease_duration is not None]
        return max(durations) if durations else None

    @property
    def suspect_since(self) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for srv in self.shards.values():
            for item, since in srv.suspect_since.items():
                held = merged.get(item)
                merged[item] = since if held is None else min(held, since)
        return merged

    @property
    def _degraded_keys(self) -> frozenset:
        return frozenset(self._merged_degraded())

    @property
    def map_epoch(self) -> int:
        """The cluster's current shard-map epoch (0 until a reshard)."""
        return self.shard_map.epoch

    # -- health / suspicion -------------------------------------------------------

    def mark_shard_suspect(self, sid: int) -> None:
        """Failure-detector verdict: until *sid* shows life again, every
        query it homes is served with an honestly widened bound (pushed
        to subscribers immediately) rather than silently stale."""
        if sid in self._suspect_shards:
            return
        self._suspect_shards.add(sid)
        self._fanout_notifications([], None)

    def clear_shard_suspect(self, sid: int) -> None:
        if sid not in self._suspect_shards:
            return
        self._suspect_shards.discard(sid)
        self._fanout_notifications([], None)

    @property
    def suspect_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self._suspect_shards))

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        """Attach every shard (impersonated source streams + one wildcard
        subscription each); must run inside the event loop, before any
        source or subscriber connects."""
        if self.started:
            return
        for sid in sorted(self.shards):
            await self._attach_shard(sid)
        self.started = True

    def _sources_for_shard(self, sid: int) -> Dict[int, List[str]]:
        by_source: Dict[int, List[str]] = {}
        for item in self.decomposition.items_needed.get(sid, ()):
            source_id = self.item_to_source.get(item)
            if source_id is None:
                continue
            by_source.setdefault(source_id, []).append(item)
        return by_source

    async def _attach_shard(self, sid: int) -> None:
        for source_id, items in sorted(self._sources_for_shard(sid).items()):
            await self._open_upstream(sid, source_id, items)
        await self._subscribe_shard(sid)
        self.shard_last_seen[sid] = self.clock()

    async def _open_upstream(self, sid: int, source_id: int,
                             items: Sequence[str]) -> None:
        """Open (or replace) the impersonated source stream for one
        (shard, source) pair and register the given item list on it.
        The registration reply's DAB_UPDATE is min-merged like any
        other; a previous stream for the pair (an item migration
        extending the list) is torn down first."""
        server = self.shards[sid]
        stream = server.connect_loopback()
        await stream.send(protocol.register_source(source_id, sorted(items)))
        reply = await stream.receive()
        if reply is not None:
            try:
                kind = protocol.validate_message(reply)
            except ProtocolError:
                kind = None
            if kind is MessageType.DAB_UPDATE:
                changed = self._merge_shard_bounds(sid, reply)
                await self._push_changed_bounds(changed)
        key = (sid, source_id)
        old_task = self._up_tasks.pop(key, None)
        old_stream = self._up_streams.pop(key, None)
        if old_stream is not None:
            old_stream.close()
        if old_task is not None:
            old_task.cancel()
        self._up_streams[key] = stream
        self._up_tasks[key] = asyncio.ensure_future(
            self._upstream_listener(sid, source_id, stream))

    async def _subscribe_shard(self, sid: int) -> None:
        """Open (or re-open) the wildcard aggregation subscription to one
        shard; the initial SNAPSHOT reply re-seeds the partial table, so
        a re-subscribe after a trunk drop also heals partial staleness."""
        server = self.shards[sid]
        if getattr(server, "closed", False):
            # A crashed shard refuses connections; retrying here would
            # spin listener-death → resubscribe forever.  The trunk is
            # rebuilt when the health monitor fails the shard over.
            raise TransportClosed(f"shard {sid} is closed")
        sub = server.connect_loopback()
        await sub.send(protocol.query_sub("*", trunk=True))
        first = await sub.receive()
        if first is not None and first.get("type") == MessageType.SNAPSHOT.value:
            for name, value in (first.get("values") or {}).items():
                if name in self._home_shards:
                    self._partials.setdefault(name, {})[sid] = float(value)
            degraded = first.get("degraded")
            if degraded is not None:
                self._set_shard_degraded(sid, degraded)
        self._sub_streams[sid] = sub
        self._sub_tasks[sid] = asyncio.ensure_future(
            self._shard_sub_listener(sid, sub))

    async def _detach_shard(self, sid: int) -> None:
        for key in [k for k in list(self._up_tasks) if k[0] == sid]:
            task = self._up_tasks.pop(key)
            task.cancel()
            stream = self._up_streams.pop(key, None)
            if stream is not None:
                stream.close()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        task = self._sub_tasks.pop(sid, None)
        stream = self._sub_streams.pop(sid, None)
        if stream is not None:
            stream.close()
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_snapshot_waiters(sid)

    async def reattach_shard(self, sid: int,
                             server: CoordinatorServer) -> None:
        """Adopt a restored shard: rebuild the impersonated streams and
        subscription, then probe the real sources for everything the
        shard reads — refreshes routed while it was dead are gone from
        its view, and fresh values (resync refreshes with bumped seqs)
        are the authoritative cure.  Shards that never died dedup the
        probe answers by seq, harmlessly."""
        await self._detach_shard(sid)
        self.shards[sid] = server
        if self.map_epoch:
            # A shard restored from a pre-reshard snapshot/journal must
            # fence incoming frames against the *current* map, not the
            # one it died under.
            server.advance_map_epoch(self.map_epoch)
        self.stats["shard_reattachments"] += 1
        await self._attach_shard(sid)
        for source_id, items in sorted(self._sources_for_shard(sid).items()):
            await self._forward_probe(source_id, items)

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> Tuple[str, int]:
        if not self.started:
            await self.start()

        async def _accept(reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
            peer = writer.get_extra_info("peername")
            stream = MessageStream(reader, writer, name=str(peer))
            await self.handle_connection(stream)

        self._tcp_server = await asyncio.start_server(_accept, host, port)
        sockname = self._tcp_server.sockets[0].getsockname()
        self.listen_address = (sockname[0], sockname[1])
        self.start_maintenance()
        return sockname[0], sockname[1]

    def start_maintenance(self) -> None:
        if self._maintenance_task is not None:
            return
        intervals = [srv.lease_check_interval for srv in self.shards.values()
                     if srv.lease_check_interval is not None]
        if not intervals and self.dab_retry_policy is None:
            return
        interval = min(intervals) if intervals else 1.0
        self._maintenance_task = asyncio.ensure_future(
            self._maintenance_loop(interval))

    async def _maintenance_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            await self.check_leases()
            await self.check_retries()

    def adopt_connection(self, server_end: MessageStream) -> None:
        task = asyncio.ensure_future(self.handle_connection(server_end))
        self._handler_tasks.add(task)
        task.add_done_callback(self._handler_tasks.discard)

    def connect_loopback(self) -> MessageStream:
        client_end, server_end = loopback_pair()
        self.adopt_connection(server_end)
        return client_end

    async def close(self, final_snapshot: bool = True) -> None:
        self._closing = True
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            try:
                await self._maintenance_task
            except (asyncio.CancelledError, Exception):
                pass
            self._maintenance_task = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for sub in list(self._subscribers.values()):
            await self._drop_subscriber(sub)
        for sid in sorted(set(self._sub_streams) | {k[0] for k in self._up_streams}):
            await self._detach_shard(sid)
        for stream in list(self._source_streams.values()):
            stream.close()
        self._source_streams.clear()
        for task in list(self._handler_tasks):
            task.cancel()
        for task in list(self._handler_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for sid in sorted(self.shards):
            await self.shards[sid].close(final_snapshot=final_snapshot)

    # -- DAB merge (shards -> router -> real sources) -----------------------------

    def _merge_shard_bounds(self, sid: int,
                            message: Mapping[str, Any]) -> Dict[str, float]:
        """Fold one shard's DAB_UPDATE into the min-merge table; returns
        the items whose *effective* (cross-shard min) bound materially
        changed, under freshly bumped router epochs."""
        changed: Dict[str, float] = {}
        for name, bound in (message.get("bounds") or {}).items():
            votes = self._shard_bounds.setdefault(name, {})
            votes[sid] = float(bound)
            effective = min(votes.values())
            previous = self._effective_bounds.get(name)
            if (previous is not None
                    and abs(effective - previous)
                    <= _DAB_CHANGE_REL_TOL * previous):
                continue
            self._effective_bounds[name] = effective
            self.epochs[name] = self.epochs.get(name, 0) + 1
            changed[name] = effective
        for name, floor in (message.get("seqs") or {}).items():
            self._seq_floors[name] = max(self._seq_floors.get(name, 0),
                                         int(floor))
        return changed

    async def _push_changed_bounds(self, changed: Mapping[str, float]) -> None:
        if not changed:
            return
        by_source: Dict[int, Tuple[Dict[str, float], Dict[str, int]]] = {}
        for name, bound in changed.items():
            source_id = self.item_to_source.get(name)
            if source_id is None:
                continue
            bounds, epochs = by_source.setdefault(source_id, ({}, {}))
            bounds[name] = bound
            epochs[name] = self.epochs[name]
        for source_id, (bounds, epochs) in sorted(by_source.items()):
            await self._send_dab_update(source_id, bounds, epochs)

    async def _send_dab_update(self, source_id: int,
                               bounds: Dict[str, float],
                               epochs: Dict[str, int],
                               attempt: int = 0,
                               msg_id: Optional[int] = None) -> None:
        """Same reliable-delivery contract as the server's: with a retry
        policy the update carries a msg_id and sits in the outstanding
        table until the real source acks it."""
        policy = self.dab_retry_policy
        if policy is not None:
            if msg_id is None:
                self._dab_msg_counter += 1
                msg_id = self._dab_msg_counter
            self._outstanding_dabs[msg_id] = {
                "source_id": source_id, "bounds": bounds, "epochs": epochs,
                "attempt": attempt, "due": self.clock() + policy.delay(attempt),
            }
        stream = self._source_streams.get(source_id)
        if stream is None:
            return
        if await self._safe_send(stream,
                                 protocol.dab_update(source_id, bounds,
                                                     epochs, msg_id=msg_id)):
            self.stats["dab_updates_sent"] += 1

    def _on_dab_ack(self, message: Mapping[str, Any]) -> None:
        self._outstanding_dabs.pop(int(message["msg_id"]), None)
        self.stats["dab_acks_received"] += 1

    async def check_retries(self) -> None:
        policy = self.dab_retry_policy
        if policy is None or not self._outstanding_dabs:
            return
        now = self.clock()
        for msg_id in list(self._outstanding_dabs):
            entry = self._outstanding_dabs.get(msg_id)
            if entry is None or entry["due"] > now:
                continue
            del self._outstanding_dabs[msg_id]
            attempt = entry["attempt"] + 1
            if attempt >= policy.max_attempts:
                self.stats["dab_retries_exhausted"] += 1
                continue
            self.stats["dab_retries"] += 1
            await self._send_dab_update(entry["source_id"], entry["bounds"],
                                        entry["epochs"], attempt=attempt,
                                        msg_id=msg_id)

    async def check_leases(self) -> None:
        """Drive every shard's lease sweep (their probes flow back to the
        real sources through the impersonated streams)."""
        for sid in sorted(self.shards):
            await self.shards[sid].check_leases()
            await self.shards[sid].check_retries()

    # -- shard listeners ----------------------------------------------------------

    async def _upstream_listener(self, sid: int, source_id: int,
                                 stream: MessageStream) -> None:
        """Consume one shard's source-plane traffic: bound changes are
        min-merged and pushed outward; probes are forwarded to the real
        source; msg_id-tagged updates are acked instantly (the loopback
        hop is lossless — retries toward the router would be noise)."""
        try:
            while True:
                message = await stream.receive()
                if message is None:
                    break
                try:
                    kind = protocol.validate_message(message)
                except ProtocolError:
                    break
                if kind is MessageType.DAB_UPDATE:
                    msg_id = message.get("msg_id")
                    if msg_id is not None:
                        await self._safe_send(
                            stream, protocol.dab_ack(source_id, int(msg_id)))
                    changed = self._merge_shard_bounds(sid, message)
                    await self._push_changed_bounds(changed)
                    probe = message.get("probe")
                    if probe:
                        await self._forward_probe(source_id, probe)
                elif kind is MessageType.ERROR:
                    break
        except (TransportClosed, ProtocolError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            stream.close()

    async def _forward_probe(self, source_id: int,
                             items: Sequence[str]) -> None:
        stream = self._source_streams.get(source_id)
        if stream is None:
            return
        message = protocol.dab_update(source_id, {}, {}, probe=items)
        if await self._safe_send(stream, message):
            self.stats["probes_forwarded"] += 1

    async def _shard_sub_listener(self, sid: int,
                                  stream: MessageStream) -> None:
        try:
            while True:
                message = await stream.receive()
                if message is None:
                    break
                try:
                    kind = protocol.validate_message(message)
                except ProtocolError:
                    break
                # Any valid frame on the trunk is proof of life — the
                # failure detector's deadline is measured against this.
                self.shard_last_seen[sid] = self.clock()
                frame_epoch = message.get("map_epoch")
                if self.map_epoch and (frame_epoch or 0) < self.map_epoch:
                    # Epoch fence: a frame computed under an older shard
                    # map (queued on the trunk before a cutover, or from
                    # a shard that missed the bump).  Its partials could
                    # resurrect a migrated-away item's contribution, so
                    # the whole frame is dropped; fresh post-cutover
                    # notifies and snapshot gathers carry the truth.
                    self.stats["fenced_frames_rejected"] += 1
                    if kind is MessageType.SNAPSHOT:
                        # Resolve the gather's waiter with "no answer"
                        # instead of letting it ride the 5s timeout.
                        self._resolve_snapshot(sid, None)
                    continue
                if kind is MessageType.NOTIFY:
                    frame_sid = message.get("shard")
                    if frame_sid is not None and int(frame_sid) != sid:
                        self.stats["shard_frame_mismatches"] += 1
                        continue
                    self._on_shard_notify(sid, message)
                    # The trunk's deep queue can hold a whole storm, and
                    # a loopback receive() on a non-empty queue never
                    # suspends — yield after each recombine so the
                    # subscriber writer tasks drain the fan-out queues
                    # instead of filling to phantom eviction.
                    await asyncio.sleep(0)
                elif kind is MessageType.SNAPSHOT:
                    self._resolve_snapshot(sid, message)
                elif kind is MessageType.ERROR:
                    break
        except (TransportClosed, ProtocolError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            stream.close()
            self._fail_snapshot_waiters(sid)
            if (not self._closing
                    and self._sub_streams.get(sid) is stream
                    and sid in self.shards):
                # The aggregation trunk died while the shard is still
                # attached (e.g. the shard evicted us as a slow consumer
                # under a notify storm).  Without the trunk this shard's
                # partials silently go stale, so re-subscribe: the fresh
                # initial snapshot re-seeds them.
                self._sub_streams.pop(sid, None)
                self._sub_tasks.pop(sid, None)
                self.stats["shard_resubscribes"] += 1
                asyncio.ensure_future(self._resubscribe_shard(sid))

    async def _resubscribe_shard(self, sid: int) -> None:
        try:
            await self._subscribe_shard(sid)
        except Exception:
            # The shard vanished under us (concurrent close/failover);
            # reattach_shard rebuilds the trunk when it returns.
            pass

    def _resolve_snapshot(self, sid: int,
                          message: Optional[Dict[str, Any]]) -> None:
        waiters = self._snapshot_waiters.get(sid)
        if waiters:
            waiter = waiters.pop(0)
            if not waiter.done():
                waiter.set_result(message)

    def _fail_snapshot_waiters(self, sid: int) -> None:
        for waiter in self._snapshot_waiters.pop(sid, []):
            if not waiter.done():
                waiter.set_result(None)

    # -- aggregation --------------------------------------------------------------

    def _set_shard_degraded(self, sid: int,
                            degraded: Mapping[str, float]) -> None:
        # The field is the shard's complete current map — replace.
        self._shard_degraded[sid] = {str(name): float(bound)
                                     for name, bound in degraded.items()}

    def _merged_degraded(self) -> Dict[str, float]:
        """A query is degraded iff any home shard flags it — or is
        *suspected* by the failure detector, or holds an item mid-
        migration.  The honest total bound sums each home shard's
        contribution: its widened lease bound when flagged, its ``B/k``
        sub-budget times :data:`SUSPECT_WIDEN_FACTOR` while suspected
        (the shard is silent, so its own widening is unobservable), and
        its full ``B/k`` otherwise."""
        merged: Dict[str, float] = {}
        suspects = self._suspect_shards
        for name, home in self._home_shards.items():
            flagged = [sid for sid in home
                       if sid in suspects
                       or name in self._shard_degraded.get(sid, {})]
            if not flagged:
                continue
            total = 0.0
            for sid in home:
                if sid in suspects:
                    total += self._sub_qab[name][sid] * SUSPECT_WIDEN_FACTOR
                    continue
                shard_map = self._shard_degraded.get(sid, {})
                total += shard_map.get(name, self._sub_qab[name][sid])
            merged[name] = total
        for name, bound in self._migration_degraded.items():
            merged[name] = max(merged.get(name, 0.0), bound)
        return merged

    def _recombined_value(self, name: str) -> Optional[float]:
        partials = self._partials.get(name)
        if not partials:
            return None
        home = self._home_shards.get(name)
        if home is None:
            return None
        available = {sid: partials[sid] for sid in home if sid in partials}
        if not available:
            return None
        return recombine(available)

    def _on_shard_notify(self, sid: int, message: Dict[str, Any]) -> None:
        self.stats["partial_notifies"] += 1
        degraded = message.get("degraded")
        if degraded is not None:
            self._set_shard_degraded(sid, degraded)
        changed: List[str] = []
        for update in message.get("updates") or []:
            name = update.get("query")
            if name not in self._home_shards:
                continue
            self._partials.setdefault(name, {})[sid] = float(update["value"])
            changed.append(name)
        recombined: List[Tuple[str, float]] = []
        for name in changed:
            value = self._recombined_value(name)
            if value is not None:
                recombined.append((name, value))
        if recombined or degraded is not None:
            self._fanout_notifications(recombined,
                                       message.get("refresh_sent_at"))

    def _fanout_notifications(self, recombined: List[Tuple[str, float]],
                              refresh_sent_at: Optional[float]) -> None:
        now = self.clock()
        merged = self._merged_degraded()
        keys = frozenset(merged)
        include_degraded = bool(merged) or keys != self._last_degraded_keys
        self._last_degraded_keys = keys
        for sub in list(self._subscribers.values()):
            updates = [{"query": name, "value": value}
                       for name, value in recombined if sub.wants(name)]
            if not updates and not include_degraded:
                continue
            message = protocol.notify(
                updates, sent_at=now, refresh_sent_at=refresh_sent_at,
                degraded={name: bound for name, bound in merged.items()
                          if sub.wants(name)} if include_degraded else None)
            try:
                sub.queue.put_nowait(message)
            except asyncio.QueueFull:
                self._evict_slow_consumer(sub)

    async def _gather_snapshot(self) -> Tuple[Dict[str, float],
                                              Dict[str, float],
                                              Dict[int, Dict[str, Any]]]:
        """Fresh per-shard snapshots, recombined.

        Each shard's snapshot serves its sub-queries within ``B/k``, so
        the summed values are within ``B`` — serving the last NOTIFY
        partials instead would stack partial staleness on top of the
        filtering error and break the budget.  A shard that cannot
        answer (mid-failover) falls back to its last partials and is
        counted."""
        self.stats["snapshot_gathers"] += 1
        loop = asyncio.get_event_loop()
        pending: Dict[int, asyncio.Future] = {}
        for sid in sorted(self.shards):
            stream = self._sub_streams.get(sid)
            if stream is None:
                # Mid-failover (or trunk re-subscribing): no live trunk,
                # this shard serves its stale partials below.
                self.stats["snapshot_gather_fallbacks"] += 1
                continue
            waiter = loop.create_future()
            self._snapshot_waiters.setdefault(sid, []).append(waiter)
            if not await self._safe_send(stream, protocol.snapshot()):
                if waiter in self._snapshot_waiters.get(sid, []):
                    self._snapshot_waiters[sid].remove(waiter)
                self.stats["snapshot_gather_fallbacks"] += 1
                continue
            pending[sid] = waiter
        values_by_shard: Dict[int, Dict[str, float]] = {}
        stats_by_shard: Dict[int, Dict[str, Any]] = {}
        for sid, waiter in pending.items():
            try:
                reply = await asyncio.wait_for(waiter,
                                               timeout=SNAPSHOT_GATHER_TIMEOUT)
            except asyncio.TimeoutError:
                reply = None
            if reply is None:
                self.stats["snapshot_gather_fallbacks"] += 1
                continue
            values_by_shard[sid] = {
                name: float(value)
                for name, value in (reply.get("values") or {}).items()}
            if reply.get("degraded") is not None:
                self._set_shard_degraded(sid, reply["degraded"])
            if reply.get("stats"):
                stats_by_shard[sid] = reply["stats"]
        values: Dict[str, float] = {}
        for name, home in self._home_shards.items():
            per: Dict[int, float] = {}
            for sid in home:
                fresh = values_by_shard.get(sid)
                if fresh is not None and name in fresh:
                    per[sid] = fresh[name]
                    continue
                stale = self._partials.get(name, {}).get(sid)
                if stale is not None:
                    per[sid] = stale
            if per:
                values[name] = recombine(per)
        return values, self._merged_degraded(), stats_by_shard

    # -- downstream connection handling -------------------------------------------

    async def handle_connection(self, stream: MessageStream) -> None:
        source_id: Optional[int] = None
        sub: Optional[_Subscriber] = None
        try:
            while True:
                message = await stream.receive()
                if message is None:
                    break
                try:
                    kind = protocol.validate_message(message)
                except ProtocolError as err:
                    self.stats["protocol_errors"] += 1
                    await self._safe_send(stream, protocol.error(str(err)))
                    break
                try:
                    if kind is MessageType.REGISTER_SOURCE:
                        source_id = await self._on_register_source(
                            stream, message)
                    elif kind is MessageType.REFRESH:
                        await self._on_refresh(message)
                    elif kind is MessageType.HEARTBEAT:
                        await self._on_heartbeat(message)
                    elif kind is MessageType.DAB_ACK:
                        self._on_dab_ack(message)
                    elif kind is MessageType.QUERY_SUB:
                        sub = await self._on_query_sub(stream, message)
                    elif kind is MessageType.SNAPSHOT:
                        await self._safe_send(
                            stream, await self._snapshot_response())
                    else:
                        self.stats["protocol_errors"] += 1
                        await self._safe_send(stream, protocol.error(
                            f"unexpected {kind.value} from a client"))
                        break
                except (ValueError, TypeError, KeyError,
                        ProtocolError) as err:
                    self.stats["protocol_errors"] += 1
                    await self._safe_send(stream, protocol.error(
                        f"malformed {kind.value} message: {err}"))
                    break
        except ProtocolError:
            self.stats["protocol_errors"] += 1
            await self._safe_send(stream, protocol.error("corrupt framing"))
        finally:
            stream.close()
            if (source_id is not None
                    and self._source_streams.get(source_id) is stream):
                del self._source_streams[source_id]
            if sub is not None:
                await self._drop_subscriber(sub)

    async def _safe_send(self, stream: MessageStream,
                         message: Dict[str, Any]) -> bool:
        try:
            await stream.send(message)
            return True
        except (TransportClosed, ProtocolError):
            return False

    async def _on_register_source(self, stream: MessageStream,
                                  message: Dict[str, Any]) -> int:
        source_id = int(message["source_id"])
        previous = self._source_streams.get(source_id)
        if previous is not None and previous is not stream:
            previous.close()
        self._source_streams[source_id] = stream
        self.stats["sources_registered"] += 1
        if self._outstanding_dabs:
            for msg_id in [m for m, entry in self._outstanding_dabs.items()
                           if entry["source_id"] == source_id]:
                del self._outstanding_dabs[msg_id]
        items = [name for name in message["items"]
                 if self.item_to_source.get(name) == source_id]
        bounds = {name: self._effective_bounds[name] for name in items
                  if name in self._effective_bounds}
        epochs = {name: self.epochs[name] for name in bounds}
        seqs = {name: self._seq_floors[name] for name in items
                if name in self._seq_floors}
        if await self._safe_send(stream,
                                 protocol.dab_update(source_id, bounds, epochs,
                                                     seqs=seqs or None)):
            self.stats["dab_updates_sent"] += 1
        return source_id

    async def _on_refresh(self, message: Dict[str, Any]) -> None:
        item = message["item"]
        seq = int(message["seq"])
        if seq > self._seq_floors.get(item, 0):
            self._seq_floors[item] = seq
        if item in self._frozen_items:
            # Mid-migration: buffer instead of routing — neither the old
            # nor the new owner may apply this value until the hand-off
            # commits (double-ownership would break the B/k budgets).
            # Flushed under the new map at cutover.
            self._frozen_items[item].append(dict(message))
            self.stats["refreshes_frozen"] += 1
            self.stats["refreshes_accepted"] += 1
            return
        if item not in self._item_shards:
            self.stats["refreshes_unroutable"] += 1
            return
        self.stats["refreshes_accepted"] += 1
        await self._route_refresh(message)

    async def _route_refresh(self, message: Dict[str, Any]) -> None:
        item = message["item"]
        shards = self._item_shards.get(item)
        if shards is None:
            return
        if self.map_epoch:
            # Stamp the current map epoch so shards fence stale routes;
            # a copy keeps the caller's frame pristine.  Pre-reshard
            # (epoch 0) frames are forwarded verbatim — byte-identical
            # to the non-resharding cluster.
            message = dict(message)
            message["map_epoch"] = self.map_epoch
        source_id = self.item_to_source.get(item)
        for sid in shards:
            stream = self._up_streams.get((sid, source_id))
            if stream is None:
                continue              # shard down: healed on reattach probe
            if await self._safe_send(stream, message):
                self.stats["refreshes_routed"] += 1

    async def _on_heartbeat(self, message: Dict[str, Any]) -> None:
        self.stats["heartbeats_received"] += 1
        source_id = int(message["source_id"])
        for (sid, src), stream in sorted(self._up_streams.items()):
            if src != source_id:
                continue
            if await self._safe_send(stream, message):
                self.stats["heartbeats_forwarded"] += 1

    # -- resharding support (driven by cluster.migration.ShardMigrator) -----------

    def freeze_item(self, item: str) -> None:
        """Start buffering *item*'s refreshes (migration in progress)."""
        self._frozen_items.setdefault(item, [])

    async def unfreeze_item(self, item: str) -> int:
        """Stop buffering and flush: every buffered refresh is routed
        under the *current* (post-cutover) map and epoch.  Returns the
        number of flushed frames."""
        buffered = self._frozen_items.pop(item, [])
        for frame in buffered:
            await self._route_refresh(frame)
        return len(buffered)

    def set_migration_degraded(self, bounds: Mapping[str, float]) -> None:
        """Flag queries whose items are mid-flight (widened bounds are
        pushed to subscribers immediately — degraded, never silent)."""
        if not bounds:
            return
        self._migration_degraded.update(
            {str(name): float(bound) for name, bound in bounds.items()})
        self._fanout_notifications([], None)

    def clear_migration_degraded(self, names: Sequence[str]) -> None:
        cleared = False
        for name in names:
            if self._migration_degraded.pop(name, None) is not None:
                cleared = True
        if cleared:
            self._fanout_notifications([], None)

    def apply_cutover(self, new_map: ShardMap,
                      updated: Mapping[str, Any]) -> None:
        """Commit one migration step's routing flip: adopt the new shard
        map (bumping :attr:`map_epoch`), swap the re-decomposed queries
        into the bank decomposition, and rebuild the routing tables that
        depend on them.  Pure dict work — no solves, no I/O."""
        self.shard_map = new_map
        self.decomposition = self.decomposition.replace(updated)
        for name, dec in updated.items():
            self._home_shards[name] = dec.home_shards
            self._sub_qab[name] = {sid: dec.sub_qab(sid)
                                   for sid in dec.home_shards}
            partials = self._partials.get(name)
            if partials:
                # An ex-home shard's last partial must not survive into
                # recombination under the new homes.
                for sid in [s for s in partials if s not in dec.sub_queries]:
                    del partials[sid]
        item_shards: Dict[str, List[int]] = {}
        for sid, items in self.decomposition.items_needed.items():
            for item in items:
                item_shards.setdefault(item, []).append(sid)
        self._item_shards = {item: tuple(sorted(sids))
                             for item, sids in item_shards.items()}

    def drop_stale_votes(self, item: str) -> None:
        """Forget DAB votes from shards that no longer read *item*.

        A leftover vote keeps the min-merge artificially tight — sound
        (sources just filter harder than needed) but it would never be
        refreshed, so the effective bound could stay pinned to a dead
        sub-query's plan forever."""
        keep = set(self._item_shards.get(item, ()))
        votes = self._shard_bounds.get(item)
        if not votes:
            return
        for sid in [s for s in votes if s not in keep]:
            del votes[sid]
        if not votes:
            self._shard_bounds.pop(item, None)

    async def _on_query_sub(self, stream: MessageStream,
                            message: Dict[str, Any]) -> _Subscriber:
        if message.get("definitions"):
            raise ProtocolError(
                "the cluster router does not accept QUERY_SUB definitions "
                "yet; register queries at build time")
        wanted = message["queries"]
        if wanted == "*":
            names: Optional[Set[str]] = None
        else:
            names = {name for name in wanted if name in self._home_shards}
        self._sub_counter += 1
        limit = (max(self.notify_queue_limit, TRUNK_QUEUE_LIMIT)
                 if message.get("trunk") else self.notify_queue_limit)
        sub = _Subscriber(self._sub_counter, stream, names, limit)
        self._subscribers[sub.sub_id] = sub
        self.stats["subscribers"] = len(self._subscribers)
        sub.writer_task = asyncio.ensure_future(self._subscriber_writer(sub))
        await self._safe_send(stream, await self._snapshot_response(sub))
        return sub

    async def _snapshot_response(self, sub: Optional[_Subscriber] = None
                                 ) -> Dict[str, Any]:
        values, degraded, stats_by_shard = await self._gather_snapshot()
        if sub is not None:
            values = {name: value for name, value in values.items()
                      if sub.wants(name)}
        if self.lease_duration is not None:
            wire_degraded: Optional[Dict[str, float]] = {
                name: bound for name, bound in degraded.items()
                if sub is None or sub.wants(name)}
        else:
            wire_degraded = None
        return protocol.snapshot(values=values,
                                 stats=self.server_stats(stats_by_shard),
                                 degraded=wire_degraded)

    def _evict_slow_consumer(self, sub: _Subscriber) -> None:
        if sub.evicted:
            return
        sub.evicted = True
        self.stats["slow_consumer_evictions"] += 1
        self._subscribers.pop(sub.sub_id, None)
        self.stats["subscribers"] = len(self._subscribers)
        if sub.writer_task is not None:
            sub.writer_task.cancel()
        sub.stream.close()

    async def _drop_subscriber(self, sub: _Subscriber) -> None:
        self._subscribers.pop(sub.sub_id, None)
        self.stats["subscribers"] = len(self._subscribers)
        if sub.writer_task is not None and not sub.writer_task.done():
            try:
                sub.queue.put_nowait(None)
            except asyncio.QueueFull:
                sub.writer_task.cancel()
            try:
                await asyncio.wait_for(sub.writer_task,
                                       timeout=self.writer_join_timeout)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                sub.writer_task.cancel()
        sub.stream.close()

    async def _subscriber_writer(self, sub: _Subscriber) -> None:
        try:
            while True:
                message = await sub.queue.get()
                if message is None:
                    return
                await sub.stream.send(message)
                self.stats["notifies_sent"] += 1
        except (TransportClosed, ProtocolError):
            self._subscribers.pop(sub.sub_id, None)
            self.stats["subscribers"] = len(self._subscribers)
            sub.stream.close()
        except asyncio.CancelledError:
            raise

    # -- introspection ------------------------------------------------------------

    def server_stats(self, stats_by_shard: Optional[Mapping[int, Dict[str, Any]]]
                     = None) -> Dict[str, Any]:
        stats: Dict[str, Any] = dict(self.stats)
        stats["cluster"] = True
        stats["shard_count"] = self.shard_map.shards
        stats["active_shards"] = list(self.decomposition.active_shards)
        stats["cross_shard_queries"] = len(self.decomposition.cross_shard)
        stats["mirrored_items"] = {
            str(sid): len(items)
            for sid, items in self.decomposition.mirrored_items.items()}
        stats["queries"] = len(self._home_shards)
        stats["items"] = len(self._item_shards)
        stats["listen_address"] = (list(self.listen_address)
                                   if self.listen_address is not None else None)
        per_shard = (dict(stats_by_shard) if stats_by_shard
                     else {sid: srv.server_stats()
                           for sid, srv in self.shards.items()})
        stats["shards"] = {str(sid): shard_stats
                           for sid, shard_stats in sorted(per_shard.items())}
        # Aggregate the hot counters so single-node tooling can read the
        # cluster like one big coordinator.
        for key in ("recomputations", "refreshes", "dab_change_messages",
                    "user_notifications", "duplicate_rejects"):
            stats[key] = sum(int(shard_stats.get(key, 0))
                             for shard_stats in per_shard.values())
        if self.dab_retry_policy is not None:
            stats["dab_updates_outstanding"] = len(self._outstanding_dabs)
        if self.lease_duration is not None:
            stats["suspect_items"] = len(self.suspect_since)
            stats["degraded_queries"] = len(self._last_degraded_keys)
        if self.map_epoch:
            stats["map_epoch"] = self.map_epoch
        if self._suspect_shards:
            stats["suspect_shards"] = sorted(self._suspect_shards)
        if self._frozen_items:
            stats["frozen_items"] = sorted(self._frozen_items)
        if self.supervisor is not None:
            stats["failover"] = self.supervisor.stats()
        if self.health is not None:
            stats["health"] = self.health.stats_snapshot()
        return stats


# ---------------------------------------------------------------------------
# scenario-driven construction (shared by `repro cluster serve` / loadgen)
# ---------------------------------------------------------------------------

def build_scenario_cluster(
    shards: int = 2,
    query_count: int = 10,
    item_count: int = 30,
    source_count: int = 8,
    trace_length: int = 301,
    seed: int = 0,
    algorithm: str = "dual_dab",
    recompute_cost: float = 5.0,
    workload: str = "portfolio",
    vectorize: bool = True,
    notify_queue_limit: int = DEFAULT_NOTIFY_QUEUE_LIMIT,
    recompute_mode: str = "full",
    bank_index: str = "flat",
    journal_dir: Optional[str] = None,
    snapshot_every: int = 500,
    fsync: str = "always",
    clock: Callable[[], float] = _time.time,
    lease_duration: Optional[float] = None,
    suspect_drift_rel: float = 0.05,
    dab_retry_policy: Optional[RetryPolicy] = None,
    solver_breaker_factory: Optional[Callable[[int], Any]] = None,
    restore: bool = True,
):
    """A :class:`ClusterCoordinator` over ``shards`` coordinator shards,
    built from the same scenario pipeline as
    :func:`~repro.service.server.build_scenario_server` — same workload
    generator, same rate estimation, same planner stack per shard — so a
    one-shard cluster is bit-identical to the single server.  Returns
    ``(cluster, scenario, item_to_source)``.

    ``journal_dir`` gives every shard its own WAL/snapshot journal under
    ``<journal_dir>/shard-<i>`` (the failover substrate); shards then
    defer bootstrap to ``restore()``, which is called here unless
    ``restore=False`` (the supervisor's rebuild path times it itself).
    ``dab_retry_policy`` arms the *router's* reliable delivery toward
    real sources; shards always run retry-free — their loopback hop to
    the router is lossless and acked instantly.
    """
    from repro.dynamics.estimation import SampledRateEstimator
    from repro.filters.caching import QuantisingCachePlanner
    from repro.filters.cost_model import CostModel
    from repro.service.journal import Journal
    from repro.simulation.harness import (
        AlgorithmName,
        SimulationConfig,
        _SINGLE_DAB_MODES,
        build_planner,
    )
    from repro.simulation.source import assign_items_to_sources
    from repro.workloads import scaled_scenario

    scenario = scaled_scenario(
        query_count=query_count, item_count=item_count,
        trace_length=trace_length, source_count=source_count,
        query_kind=workload, seed=seed,
    )
    config = SimulationConfig(
        queries=scenario.queries, traces=scenario.traces,
        algorithm=algorithm, recompute_cost=recompute_cost,
        source_count=source_count, seed=seed, vectorize=vectorize,
        recompute_mode=recompute_mode, bank_index=bank_index,
    )
    if config.algorithm is AlgorithmName.AAO_T:
        raise ReproError("the live service has no periodic scheduler yet; "
                         "pick a per-query algorithm")
    items = config.used_items
    rates = SampledRateEstimator().estimate_all(config.traces, items)
    cost_model = CostModel(ddm=config.ddm, rates=rates,
                           recompute_cost=recompute_cost)
    item_to_source = assign_items_to_sources(items, source_count)

    shard_map = ShardMap(shards)
    decomposition = decompose_bank(config.queries, shard_map.shard_of)
    initial_values = config.traces.initial_values(items)

    def make_shard(sid: int) -> CoordinatorServer:
        sub_queries = decomposition.sub_queries_for[sid]
        needed = decomposition.items_needed[sid]
        planner = build_planner(config, cost_model)
        if config.cache_grid is not None:
            planner = QuantisingCachePlanner(planner, grid=config.cache_grid,
                                             bank_index_mode=bank_index)
        journal = (Journal(os.path.join(journal_dir, f"shard-{sid}"),
                           fsync=fsync, snapshot_every=snapshot_every)
                   if journal_dir is not None else None)
        return CoordinatorServer(
            queries=sub_queries, planner=planner,
            initial_values={name: initial_values[name] for name in needed},
            item_to_source={name: item_to_source[name] for name in needed},
            mode=_SINGLE_DAB_MODES[config.algorithm],
            vectorize=vectorize, recompute_cost=recompute_cost,
            # The shard's only subscriber is the router's aggregation
            # trunk; evicting it under a notify storm severs the shard
            # from the cluster, so the trunk queue is sized generously
            # (user-facing backpressure lives at the router's own
            # subscriber queues, which keep ``notify_queue_limit``).
            notify_queue_limit=max(SHARD_TRUNK_QUEUE_LIMIT,
                                   notify_queue_limit),
            recompute_strategy=recompute_mode,
            bank_index=bank_index,
            shard_id=sid,
            clock=clock,
            lease_duration=lease_duration,
            suspect_drift_rel=suspect_drift_rel,
            solver_breaker=(solver_breaker_factory(sid)
                            if solver_breaker_factory is not None else None),
            journal=journal,
            bootstrap=journal is None,
        )

    shard_servers: Dict[int, CoordinatorServer] = {}
    for sid in decomposition.active_shards:
        server = make_shard(sid)
        if journal_dir is not None and restore:
            server.restore()
        shard_servers[sid] = server

    cluster = ClusterCoordinator(
        shards=shard_servers, decomposition=decomposition,
        shard_map=shard_map, item_to_source=item_to_source,
        queries=config.queries, clock=clock,
        notify_queue_limit=notify_queue_limit,
        dab_retry_policy=dab_retry_policy,
        make_shard=make_shard,
    )
    return cluster, scenario, item_to_source
