"""Subscriber fan-out brokers: scale NOTIFY delivery off the router.

A :class:`NotifyBroker` holds ONE wildcard subscription upstream (to the
cluster router, or to a plain :class:`CoordinatorServer` — the wire is
identical) and re-fans every NOTIFY to its own subscribers through the
same bounded-queue / slow-consumer-eviction discipline the server uses.
It also caches the latest value and degraded map per query, so SNAPSHOT
requests and new-subscriber seeding are served locally — the upstream
coordinator sees a constant number of subscribers no matter how many
clients attach.

A :class:`BrokerTier` spreads M brokers over one upstream and deals
incoming subscribers round-robin, which bounds the per-broker fan-out at
``ceil(clients / M)``.

The cache serves the *last recombined value* — exactly what a direct
subscriber would hold after the same NOTIFY — so interposing a broker
never changes the values a client observes, only who writes the bytes.
"""

from __future__ import annotations

import asyncio
import time as _time
from typing import Any, Callable, Dict, List, Optional, Set

from repro.service import protocol
from repro.service.protocol import MessageType, ProtocolError
from repro.service.server import DEFAULT_NOTIFY_QUEUE_LIMIT, _Subscriber
from repro.service.transports import MessageStream, TransportClosed, loopback_pair


class NotifyBroker:
    """One fan-out node: single upstream subscription, many downstream."""

    def __init__(self, connect_upstream: Callable[[], MessageStream],
                 clock: Callable[[], float] = _time.time,
                 notify_queue_limit: int = DEFAULT_NOTIFY_QUEUE_LIMIT,
                 writer_join_timeout: float = 1.0,
                 name: str = "broker"):
        self.connect_upstream = connect_upstream
        self.clock = clock
        self.notify_queue_limit = int(notify_queue_limit)
        self.writer_join_timeout = float(writer_join_timeout)
        self.name = name
        self.values: Dict[str, float] = {}
        self.degraded: Dict[str, float] = {}
        self._upstream: Optional[MessageStream] = None
        self._upstream_task: Optional[asyncio.Task] = None
        self._subscribers: Dict[int, _Subscriber] = {}
        self._sub_counter = 0
        self._handler_tasks: Set[asyncio.Task] = set()
        self._closing = False
        self.started = False
        self.stats = {
            "upstream_notifies": 0,
            "upstream_resubscribes": 0,
            "notifies_sent": 0,
            "snapshots_served": 0,
            "slow_consumer_evictions": 0,
            "subscribers": 0,
            "protocol_errors": 0,
        }

    async def start(self) -> None:
        """Subscribe upstream and seed the cache from the initial snapshot."""
        if self.started:
            return
        self._closing = False
        await self._subscribe_upstream()
        self.started = True

    async def _subscribe_upstream(self) -> None:
        # ``trunk=True``: the broker is the upstream's aggregation
        # trunk for every client behind it — the coordinator must give
        # it a deep queue, not the user-facing slow-consumer limit.
        stream = self.connect_upstream()
        await stream.send(protocol.query_sub("*", trunk=True))
        first = await stream.receive()
        if first is not None and first.get("type") == MessageType.SNAPSHOT.value:
            for key, value in (first.get("values") or {}).items():
                self.values[key] = float(value)
            if first.get("degraded") is not None:
                self.degraded = {k: float(v)
                                 for k, v in first["degraded"].items()}
        self._upstream = stream
        self._upstream_task = asyncio.ensure_future(self._upstream_loop(stream))

    async def _upstream_loop(self, stream: MessageStream) -> None:
        try:
            while True:
                message = await stream.receive()
                if message is None:
                    break
                kind = message.get("type")
                if kind == MessageType.NOTIFY.value:
                    self.stats["upstream_notifies"] += 1
                    for update in message.get("updates") or []:
                        self.values[update["query"]] = float(update["value"])
                    if message.get("degraded") is not None:
                        self.degraded = {k: float(v) for k, v
                                         in message["degraded"].items()}
                    self._fanout(message)
                    # A deep trunk queue can hold a whole storm's
                    # backlog, and a loopback receive() on a non-empty
                    # queue never suspends — without this yield the
                    # drain runs synchronously, stuffing every
                    # subscriber queue before their writer tasks get a
                    # single turn and "evicting" clients that were
                    # never actually slow.
                    await asyncio.sleep(0)
                elif kind == MessageType.SNAPSHOT.value:
                    # Unsolicited refresh of the cache (e.g. after an
                    # upstream restore) — absorb it silently.
                    for key, value in (message.get("values") or {}).items():
                        self.values[key] = float(value)
        except (TransportClosed, ProtocolError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            stream.close()
            if not self._closing and self._upstream is stream:
                # Cut unexpectedly (upstream restart, or an eviction
                # before the trunk flag deepened our queue): reattach
                # and re-seed the cache from the fresh initial
                # snapshot, or every client behind us silently
                # freezes at the last delivered NOTIFY.
                self._upstream = None
                self._upstream_task = None
                self.stats["upstream_resubscribes"] += 1
                asyncio.ensure_future(self._resubscribe_upstream())

    async def _resubscribe_upstream(self) -> None:
        try:
            await self._subscribe_upstream()
        except Exception:
            pass  # upstream gone for good; close() handles the rest

    def _fanout(self, message: Dict[str, Any]) -> None:
        updates = message.get("updates") or []
        degraded = message.get("degraded")
        for sub in list(self._subscribers.values()):
            wanted = [u for u in updates if sub.wants(u["query"])]
            if not wanted and degraded is None:
                continue
            out = protocol.notify(
                wanted, sent_at=message.get("sent_at"),
                refresh_sent_at=message.get("refresh_sent_at"),
                shard=message.get("shard"),
                degraded={k: v for k, v in degraded.items()
                          if sub.wants(k)} if degraded is not None else None)
            try:
                sub.queue.put_nowait(out)
            except asyncio.QueueFull:
                self._evict_slow_consumer(sub)

    # -- downstream ---------------------------------------------------------------

    def connect_loopback(self) -> MessageStream:
        client_end, server_end = loopback_pair()
        task = asyncio.ensure_future(self.handle_connection(server_end))
        self._handler_tasks.add(task)
        task.add_done_callback(self._handler_tasks.discard)
        return client_end

    async def handle_connection(self, stream: MessageStream) -> None:
        sub: Optional[_Subscriber] = None
        try:
            while True:
                message = await stream.receive()
                if message is None:
                    break
                try:
                    kind = protocol.validate_message(message)
                except ProtocolError as err:
                    self.stats["protocol_errors"] += 1
                    await self._safe_send(stream, protocol.error(str(err)))
                    break
                if kind is MessageType.QUERY_SUB:
                    if message.get("definitions"):
                        self.stats["protocol_errors"] += 1
                        await self._safe_send(stream, protocol.error(
                            "brokers are read-only: register queries at the "
                            "coordinator"))
                        break
                    sub = self._add_subscriber(stream, message)
                    await self._safe_send(stream, self._snapshot_response(sub))
                elif kind is MessageType.SNAPSHOT:
                    self.stats["snapshots_served"] += 1
                    await self._safe_send(stream, self._snapshot_response(sub))
                else:
                    self.stats["protocol_errors"] += 1
                    await self._safe_send(stream, protocol.error(
                        f"unexpected {kind.value}: brokers serve "
                        "subscribers only"))
                    break
        except ProtocolError:
            self.stats["protocol_errors"] += 1
        finally:
            stream.close()
            if sub is not None:
                await self._drop_subscriber(sub)

    def _add_subscriber(self, stream: MessageStream,
                        message: Dict[str, Any]) -> _Subscriber:
        wanted = message["queries"]
        names = None if wanted == "*" else set(wanted)
        self._sub_counter += 1
        sub = _Subscriber(self._sub_counter, stream, names,
                          self.notify_queue_limit)
        self._subscribers[sub.sub_id] = sub
        self.stats["subscribers"] = len(self._subscribers)
        sub.writer_task = asyncio.ensure_future(self._subscriber_writer(sub))
        return sub

    def _snapshot_response(self, sub: Optional[_Subscriber]) -> Dict[str, Any]:
        values = {name: value for name, value in self.values.items()
                  if sub is None or sub.wants(name)}
        degraded = ({name: bound for name, bound in self.degraded.items()
                     if sub is None or sub.wants(name)}
                    if self.degraded else None)
        stats = dict(self.stats)
        stats["broker"] = self.name
        return protocol.snapshot(values=values, stats=stats,
                                 degraded=degraded)

    async def _safe_send(self, stream: MessageStream,
                         message: Dict[str, Any]) -> bool:
        try:
            await stream.send(message)
            return True
        except (TransportClosed, ProtocolError):
            return False

    def _evict_slow_consumer(self, sub: _Subscriber) -> None:
        if sub.evicted:
            return
        sub.evicted = True
        self.stats["slow_consumer_evictions"] += 1
        self._subscribers.pop(sub.sub_id, None)
        self.stats["subscribers"] = len(self._subscribers)
        if sub.writer_task is not None:
            sub.writer_task.cancel()
        sub.stream.close()

    async def _drop_subscriber(self, sub: _Subscriber) -> None:
        self._subscribers.pop(sub.sub_id, None)
        self.stats["subscribers"] = len(self._subscribers)
        if sub.writer_task is not None and not sub.writer_task.done():
            try:
                sub.queue.put_nowait(None)
            except asyncio.QueueFull:
                sub.writer_task.cancel()
            try:
                await asyncio.wait_for(sub.writer_task,
                                       timeout=self.writer_join_timeout)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                sub.writer_task.cancel()
        sub.stream.close()

    async def _subscriber_writer(self, sub: _Subscriber) -> None:
        try:
            while True:
                message = await sub.queue.get()
                if message is None:
                    return
                await sub.stream.send(message)
                self.stats["notifies_sent"] += 1
        except (TransportClosed, ProtocolError):
            self._subscribers.pop(sub.sub_id, None)
            self.stats["subscribers"] = len(self._subscribers)
            sub.stream.close()
        except asyncio.CancelledError:
            raise

    async def close(self) -> None:
        self._closing = True
        if self._upstream_task is not None:
            self._upstream_task.cancel()
            try:
                await self._upstream_task
            except (asyncio.CancelledError, Exception):
                pass
            self._upstream_task = None
        if self._upstream is not None:
            self._upstream.close()
            self._upstream = None
        for sub in list(self._subscribers.values()):
            await self._drop_subscriber(sub)
        for task in list(self._handler_tasks):
            task.cancel()
        for task in list(self._handler_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self.started = False


class BrokerTier:
    """Round-robin M brokers over one upstream coordinator."""

    def __init__(self, connect_upstream: Callable[[], MessageStream],
                 brokers: int = 2,
                 clock: Callable[[], float] = _time.time,
                 notify_queue_limit: int = DEFAULT_NOTIFY_QUEUE_LIMIT):
        if brokers < 1:
            raise ValueError("a broker tier needs at least one broker")
        self.brokers: List[NotifyBroker] = [
            NotifyBroker(connect_upstream, clock=clock,
                         notify_queue_limit=notify_queue_limit,
                         name=f"broker-{i}")
            for i in range(brokers)]
        self._next = 0

    async def start(self) -> None:
        for broker in self.brokers:
            await broker.start()

    def connect_loopback(self) -> MessageStream:
        """A client stream to the next broker, round-robin."""
        broker = self.brokers[self._next % len(self.brokers)]
        self._next += 1
        return broker.connect_loopback()

    def stats(self) -> Dict[str, Any]:
        return {
            "brokers": len(self.brokers),
            "subscribers": sum(b.stats["subscribers"] for b in self.brokers),
            "notifies_sent": sum(b.stats["notifies_sent"]
                                 for b in self.brokers),
            "upstream_notifies": sum(b.stats["upstream_notifies"]
                                     for b in self.brokers),
            "slow_consumer_evictions": sum(
                b.stats["slow_consumer_evictions"] for b in self.brokers),
            "per_broker": {b.name: dict(b.stats) for b in self.brokers},
        }

    async def close(self) -> None:
        for broker in self.brokers:
            await broker.close()
