"""Stable item → shard assignment for the coordinator cluster.

The shard map must be deterministic across processes, machines and
Python invocations: the router, the supervisor and any out-of-process
tooling (journal inspection, benchmarks) all need to agree on which
shard owns an item without exchanging state.  Python's builtin
``hash()`` is salted per process (``PYTHONHASHSEED``), so the map is
keyed on ``zlib.crc32`` over the UTF-8 item name instead — stable by
specification, cheap, and well mixed for the short symbol-like item
names the scenario generators produce.

Live resharding layers a sparse override table on top of the stable
hash: ``rebalance()`` returns a new map whose explicitly moved items
point at their new owners while every other item keeps its CRC32 home
bit-for-bit.  Each rebalance bumps the map *epoch* — the fencing token
stamped on routed frames so a shard holding a stale map can never
accept traffic for an item it no longer owns.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def stable_shard(item: str, shards: int) -> int:
    """Return the owning shard for *item* in a cluster of *shards*."""
    if shards <= 0:
        raise ValueError("shard count must be positive")
    if shards == 1:
        return 0
    return zlib.crc32(item.encode("utf-8")) % shards


class ShardMap:
    """A cluster's item → shard assignment: stable hash + sparse overrides.

    Immutable on purpose: ``rebalance()`` returns a *new* map at the
    next epoch rather than mutating in place, so an in-flight migration
    can hold both the old and new assignment side by side and every
    routed frame can be fenced against exactly one epoch.  A map with
    no overrides is pure arithmetic and can be reconstructed anywhere
    from the shard count alone.
    """

    def __init__(self, shards: int,
                 overrides: Optional[Mapping[str, int]] = None,
                 epoch: int = 0) -> None:
        if shards <= 0:
            raise ValueError("shard count must be positive")
        self.shards = int(shards)
        self.epoch = int(epoch)
        self.overrides: Dict[str, int] = {}
        for item, shard in (overrides or {}).items():
            shard = int(shard)
            if not 0 <= shard < self.shards:
                raise ValueError(
                    f"override for {item!r} targets shard {shard}, but the "
                    f"cluster has shards 0..{self.shards - 1}")
            # Overrides equal to the stable hash are redundant — prune
            # them so maps that round-trip through rebalance() compare
            # equal to maps built directly.
            if shard != stable_shard(item, self.shards):
                self.overrides[item] = shard

    def shard_of(self, item: str) -> int:
        override = self.overrides.get(item)
        if override is not None:
            return override
        return stable_shard(item, self.shards)

    def __call__(self, item: str) -> int:
        return self.shard_of(item)

    def rebalance(self, moves: Mapping[str, int]) -> "ShardMap":
        """A new map at ``epoch + 1`` with *moves* applied.

        Minimal movement by construction: only the items named in
        *moves* change owner; every other item's assignment (stable
        hash or prior override) is carried over untouched.  Moving an
        item back to its stable home simply drops its override.
        """
        merged = dict(self.overrides)
        for item, shard in moves.items():
            shard = int(shard)
            if not 0 <= shard < self.shards:
                raise ValueError(
                    f"cannot move {item!r} to shard {shard}: the cluster "
                    f"has shards 0..{self.shards - 1}")
            merged[item] = shard
        return ShardMap(self.shards, overrides=merged, epoch=self.epoch + 1)

    def partition(self, items: Iterable[str]) -> Dict[int, List[str]]:
        """Group *items* by owning shard (shards with no items omitted)."""
        grouped: Dict[int, List[str]] = {}
        for item in items:
            grouped.setdefault(self.shard_of(item), []).append(item)
        return {shard: sorted(names) for shard, names in sorted(grouped.items())}

    def spread(self, items: Sequence[str]) -> Tuple[int, ...]:
        """The sorted tuple of distinct shards touched by *items*."""
        return tuple(sorted({self.shard_of(item) for item in items}))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardMap(shards={self.shards}, epoch={self.epoch}, "
                f"overrides={len(self.overrides)})")
