"""Stable item → shard assignment for the coordinator cluster.

The shard map must be deterministic across processes, machines and
Python invocations: the router, the supervisor and any out-of-process
tooling (journal inspection, benchmarks) all need to agree on which
shard owns an item without exchanging state.  Python's builtin
``hash()`` is salted per process (``PYTHONHASHSEED``), so the map is
keyed on ``zlib.crc32`` over the UTF-8 item name instead — stable by
specification, cheap, and well mixed for the short symbol-like item
names the scenario generators produce.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Sequence, Tuple


def stable_shard(item: str, shards: int) -> int:
    """Return the owning shard for *item* in a cluster of *shards*."""
    if shards <= 0:
        raise ValueError("shard count must be positive")
    if shards == 1:
        return 0
    return zlib.crc32(item.encode("utf-8")) % shards


class ShardMap:
    """A fixed-size cluster's item → shard assignment.

    Thin and immutable on purpose: resharding is out of scope (the
    cluster is built for a fixed N), so the map is pure arithmetic and
    can be reconstructed anywhere from the shard count alone.
    """

    def __init__(self, shards: int) -> None:
        if shards <= 0:
            raise ValueError("shard count must be positive")
        self.shards = int(shards)

    def shard_of(self, item: str) -> int:
        return stable_shard(item, self.shards)

    def __call__(self, item: str) -> int:
        return self.shard_of(item)

    def partition(self, items: Iterable[str]) -> Dict[int, List[str]]:
        """Group *items* by owning shard (shards with no items omitted)."""
        grouped: Dict[int, List[str]] = {}
        for item in items:
            grouped.setdefault(self.shard_of(item), []).append(item)
        return {shard: sorted(names) for shard, names in sorted(grouped.items())}

    def spread(self, items: Sequence[str]) -> Tuple[int, ...]:
        """The sorted tuple of distinct shards touched by *items*."""
        return tuple(sorted({self.shard_of(item) for item in items}))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardMap(shards={self.shards})"
