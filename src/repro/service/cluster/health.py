"""Shard health: heartbeat failure detection driving automatic failover.

The :class:`ShardHealthMonitor` watches each shard's aggregation trunk
through the router's ``shard_last_seen`` table (every valid trunk frame
— NOTIFY, SNAPSHOT, probe reply — is proof of life).  Detection is the
classic *deadline + miss count* detector, deterministic under any clock
the cluster runs on (wall time in production, the chaos soak's logical
step clock in tests):

1. Each :meth:`poll`, a shard whose trunk has been silent longer than
   ``deadline`` accrues one *miss* — but first the monitor sends a
   read-only SNAPSHOT probe down the trunk, so a healthy-but-quiet
   shard (no value changed, nothing to notify) proves itself before the
   next poll.  A probe that cannot even be sent (trunk gone) is itself
   a strong miss.
2. At ``max_misses`` consecutive misses the shard is *suspected*: the
   router immediately serves every query the shard homes with an
   honestly widened bound (``cluster.mark_shard_suspect`` — degraded,
   never silently stale).
3. With ``auto_failover`` (the default), suspicion triggers
   ``supervisor.fail_over``: the corpse's plumbing is detached, the
   shard is journal-restored, re-attached, and the real sources are
   probed for resync — no operator in the loop.
4. Suspicion clears on the first poll that sees trunk life again; the
   detection → recovery interval is recorded per event (the
   ``resharding`` bench section reports its percentiles).

A cluster that never misses a deadline never takes any action here:
probes are read-only and state untouched, so a no-failure run with the
monitor attached is bit-identical to one without it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import ReproError
from repro.service import protocol
from repro.service.cluster.router import ClusterCoordinator
from repro.service.cluster.supervisor import ShardSupervisor

#: Bounded event history (mirrors the supervisor's recovery history).
HEALTH_EVENT_LIMIT = 64


class ShardHealthMonitor:
    """Deadline/miss-count failure detector over the shard trunks."""

    def __init__(self, cluster: ClusterCoordinator,
                 supervisor: Optional[ShardSupervisor] = None,
                 clock: Optional[Callable[[], float]] = None,
                 deadline: float = 2.0,
                 max_misses: int = 2,
                 auto_failover: bool = True):
        if auto_failover and supervisor is None:
            raise ReproError(
                "auto_failover needs a ShardSupervisor (journaled "
                "cluster); pass auto_failover=False to only detect")
        if deadline <= 0 or max_misses < 1:
            raise ReproError("deadline must be > 0 and max_misses >= 1")
        self.cluster = cluster
        self.supervisor = supervisor
        self.clock = clock if clock is not None else cluster.clock
        self.deadline = float(deadline)
        self.max_misses = int(max_misses)
        self.auto_failover = bool(auto_failover)
        #: sid -> consecutive misses (absent = healthy).
        self.misses: Dict[int, int] = {}
        #: sid -> clock() when suspicion fired (absent = not suspect).
        self.suspected_at: Dict[int, float] = {}
        #: Completed detection→recovery events (bounded tail).
        self.events: List[Dict[str, Any]] = []
        self.stats: Dict[str, int] = {
            "polls": 0,
            "probes_sent": 0,
            "misses": 0,
            "suspicions": 0,
            "failovers": 0,
            "recoveries": 0,
        }
        cluster.health = self

    async def _probe(self, sid: int) -> bool:
        """Ask the silent shard for a read-only SNAPSHOT over its trunk.
        The reply lands in the trunk listener, refreshing
        ``shard_last_seen`` before the next poll.  Returns False when
        the probe could not even be sent."""
        stream = self.cluster._sub_streams.get(sid)
        if stream is None:
            return False
        if not await self.cluster._safe_send(stream, protocol.snapshot()):
            return False
        self.stats["probes_sent"] += 1
        return True

    async def poll(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """One detector sweep; returns the failover records it caused.

        Deterministic: shards are visited in sorted order, and all time
        arithmetic uses the injected clock — under the chaos soak's
        logical step clock the same fault schedule always detects and
        recovers on the same steps."""
        now = self.clock() if now is None else now
        self.stats["polls"] += 1
        records: List[Dict[str, Any]] = []
        for sid in sorted(self.cluster.shards):
            last = self.cluster.shard_last_seen.get(sid)
            if last is not None and now - last <= self.deadline:
                self.misses.pop(sid, None)
                suspected = self.suspected_at.pop(sid, None)
                if suspected is not None:
                    # Back from the dead (failover completed and the
                    # trunk shows life): unflag and log the event.
                    self.stats["recoveries"] += 1
                    self.cluster.clear_shard_suspect(sid)
                    self.events.append({
                        "shard": sid,
                        "suspected_at": suspected,
                        "recovered_at": now,
                        "detection_to_recovery": now - suspected,
                    })
                    del self.events[:-HEALTH_EVENT_LIMIT]
                continue
            missed = self.misses.get(sid, 0) + 1
            self.misses[sid] = missed
            self.stats["misses"] += 1
            # Give a quiet-but-healthy shard the chance to answer before
            # the next poll; an unsendable probe stays a miss.
            await self._probe(sid)
            if missed < self.max_misses:
                continue
            if sid not in self.suspected_at:
                self.suspected_at[sid] = now
                self.stats["suspicions"] += 1
                self.cluster.mark_shard_suspect(sid)
            if not self.auto_failover:
                continue
            if self.supervisor is not None:
                record = dict(await self.supervisor.fail_over(sid))
                record["detected_at"] = now
                record["misses"] = missed
                self.stats["failovers"] += 1
                self.misses.pop(sid, None)
                records.append(record)
        return records

    def stats_snapshot(self) -> Dict[str, Any]:
        return {
            **self.stats,
            "deadline": self.deadline,
            "max_misses": self.max_misses,
            "auto_failover": self.auto_failover,
            "suspect_shards": sorted(self.suspected_at),
            "events": [dict(event) for event in self.events[-HEALTH_EVENT_LIMIT:]],
        }
