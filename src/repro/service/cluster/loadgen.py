"""Cluster load generator: sources × subscribers against a shard cluster.

Same audit discipline as :mod:`repro.service.loadgen`, pointed at a
:class:`~repro.service.cluster.router.ClusterCoordinator` instead of a
single server: agents register with the *router* (they are oblivious to
sharding), replay ``duration`` trace steps through their DAB filters,
and the final recombined values are audited against ground truth at the
full per-query budget ``B`` — the end-to-end check of the cross-shard
``B/k`` decomposition's triangle-inequality soundness.

With ``brokers > 0`` the subscribers (and the auditor) attach through a
:class:`~repro.service.cluster.broker.BrokerTier` instead of directly to
the router, exercising the fan-out tier under the same audit.
"""

from __future__ import annotations

import asyncio
import json
import time as _time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.service.agent import agents_for_scenario
from repro.service.client import ServiceClient, latency_percentiles


async def _run_async(
    cluster: "Any",
    scenario: "Any",
    item_to_source: Dict[str, int],
    subscriber_count: int,
    duration: int,
    tick_interval: float,
    brokers: int,
) -> Dict[str, Any]:
    from repro.service.cluster.broker import BrokerTier

    await cluster.start()

    tier: Optional[BrokerTier] = None
    if brokers > 0:
        tier = BrokerTier(cluster.connect_loopback, brokers=brokers,
                          clock=cluster.clock)
        await tier.start()

    def _subscriber_attach():
        return tier.connect_loopback() if tier is not None \
            else cluster.connect_loopback()

    agents = agents_for_scenario(scenario, item_to_source,
                                 timestamp_refreshes=True)
    for agent in agents.values():
        await agent.connect(cluster.connect_loopback())

    subscribers = []
    for _ in range(subscriber_count):
        client = ServiceClient(_subscriber_attach())
        await client.subscribe("*")
        subscribers.append(client)

    started = _time.perf_counter()
    sent = await asyncio.gather(*[
        agent.replay(scenario.traces, tick_interval=tick_interval,
                     max_steps=duration)
        for agent in agents.values()
    ])
    elapsed = _time.perf_counter() - started

    # Let in-flight partials recombine and notifies drain.
    await asyncio.sleep(0.05)

    auditor = ServiceClient(_subscriber_attach())
    served = await auditor.subscribe("*")
    stats = auditor.stats_seen
    if tier is not None:
        # The broker serves its cached stats; the audit wants the
        # router's live cluster stats too.
        stats = {"broker": stats, "cluster": cluster.server_stats()}

    truth = {}
    for agent in agents.values():
        truth.update(agent.values)
    violations = []
    for query in scenario.queries:
        true_value = query.evaluate(truth)
        error = abs(served[query.name] - true_value)
        if error > query.qab * (1.0 + 1e-9) + 1e-12:
            violations.append({"query": query.name, "error": error,
                               "qab": query.qab})

    latencies = [sample for client in subscribers
                 for sample in client.latencies]
    ticks = sum(agent.stats["ticks"] for agent in agents.values())
    decomposition = cluster.decomposition
    report = {
        "shards": cluster.shard_map.shards,
        "active_shards": list(decomposition.active_shards),
        "cross_shard_queries": len(decomposition.cross_shard),
        "mirrored_items": sum(len(items) for items
                              in decomposition.mirrored_items.values()),
        "brokers": brokers,
        "sources": len(agents),
        "subscribers": subscriber_count,
        "queries": len(scenario.queries),
        "items": len(item_to_source),
        "duration_steps": duration,
        "transport": "loopback",
        "elapsed_seconds": elapsed,
        "ticks": ticks,
        "ticks_per_second": ticks / elapsed if elapsed > 0 else 0.0,
        "refreshes_sent": sum(s for s in sent),
        "refreshes_filtered": sum(agent.stats["refreshes_filtered"]
                                  for agent in agents.values()),
        "notifies_received": sum(client.notifies_received
                                 for client in subscribers),
        "notify_latency_seconds": latency_percentiles(latencies),
        "latency_samples": len(latencies),
        "server_stats": stats,
        "broker_stats": tier.stats() if tier is not None else None,
        "qab_violations": len(violations),
        "qab_violation_detail": violations[:10],
    }

    await auditor.close()
    for client in subscribers:
        await client.close()
    for agent in agents.values():
        await agent.close()
    if tier is not None:
        await tier.close()
    await cluster.close()
    return report


def run_cluster_loadgen(
    shards: int = 2,
    sources: int = 8,
    queries: int = 100,
    items: int = 40,
    duration: int = 30,
    subscribers: int = 4,
    brokers: int = 0,
    tick_interval: float = 0.0,
    seed: int = 0,
    algorithm: str = "dual_dab",
    workload: str = "portfolio",
    journal_dir: Optional[str] = None,
    output: Optional[str] = None,
    trace_length: Optional[int] = None,
) -> Dict[str, Any]:
    """Build an in-process ``shards``-way cluster from the scenario recipe
    and drive it with the standard loadgen audit; see the module
    docstring.  Returns the report dict (written as JSON to ``output``
    when given)."""
    from repro.service.cluster.router import build_scenario_cluster

    trace_length = max(trace_length or 0, duration + 2)
    cluster, scenario, item_to_source = build_scenario_cluster(
        shards=shards, query_count=queries, item_count=items,
        source_count=sources, trace_length=trace_length, seed=seed,
        algorithm=algorithm, workload=workload, journal_dir=journal_dir,
    )
    report = asyncio.run(_run_async(
        cluster=cluster, scenario=scenario, item_to_source=item_to_source,
        subscriber_count=subscribers, duration=duration,
        tick_interval=tick_interval, brokers=brokers,
    ))
    report["seed"] = seed
    report["algorithm"] = algorithm
    report["workload"] = workload
    if output:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        report["output"] = str(path)
    return report
