"""Sharded coordinator cluster: router, budget decomposition, brokers.

One :class:`~repro.service.server.CoordinatorServer` owns every item and
query in the single-node deployment.  This package partitions the item
space across N coordinator *shards* and keeps the paper's accuracy
contract intact end to end:

* :mod:`repro.service.cluster.routing` — the stable item → shard hash
  (CRC32, immune to ``PYTHONHASHSEED``) and the :class:`ShardMap`;
* :mod:`repro.service.cluster.router` — the
  :class:`~repro.service.cluster.router.ClusterCoordinator`: a protocol
  peer that impersonates each source toward the owning shards, routes
  ``REFRESH``/``HEARTBEAT`` traffic, min-merges per-shard primary DABs
  back to the real sources, and recombines per-shard partial aggregates
  into full query values for subscribers (the AAO ``B/k`` split of
  :mod:`repro.filters.shard_budget` at the shard boundary);
* :mod:`repro.service.cluster.broker` — the subscriber fan-out tier:
  dedicated :class:`NotifyBroker` relays with bounded per-subscriber
  queues and slow-consumer eviction, so NOTIFY delivery to 10^4–10^5
  clients never rides a shard's event loop;
* :mod:`repro.service.cluster.supervisor` — journal-backed shard
  failover: kill a shard, restore it from its own WAL/snapshot, and
  force sources to resync through the existing probe path;
* :mod:`repro.service.cluster.health` — the heartbeat failure detector
  (:class:`ShardHealthMonitor`): deadline + miss-count suspicion over
  the shard trunks, honest degraded bounds while suspect, automatic
  journal-restore failover with no operator in the loop;
* :mod:`repro.service.cluster.migration` — epoch-fenced live
  resharding (:class:`ShardMigrator`): freeze → hand-off → cutover per
  item, with the map epoch stamped on routed frames so a lagging shard
  can never double-own an item;
* :mod:`repro.service.cluster.loadgen` — the cluster load generator
  behind ``repro cluster loadgen`` (end-to-end QAB audit over the
  recombined values).

Everything is lazily exported, mirroring :mod:`repro.service`.
"""

from __future__ import annotations

from repro.service.cluster.routing import ShardMap, stable_shard

__all__ = [
    "ShardMap",
    "stable_shard",
    # lazily loaded:
    "ClusterCoordinator",
    "build_scenario_cluster",
    "NotifyBroker",
    "BrokerTier",
    "ShardSupervisor",
    "ShardHealthMonitor",
    "ShardMigrator",
    "run_cluster_loadgen",
]

_LAZY = {
    "ClusterCoordinator": ("repro.service.cluster.router", "ClusterCoordinator"),
    "build_scenario_cluster": ("repro.service.cluster.router",
                               "build_scenario_cluster"),
    "NotifyBroker": ("repro.service.cluster.broker", "NotifyBroker"),
    "BrokerTier": ("repro.service.cluster.broker", "BrokerTier"),
    "ShardSupervisor": ("repro.service.cluster.supervisor", "ShardSupervisor"),
    "ShardHealthMonitor": ("repro.service.cluster.health", "ShardHealthMonitor"),
    "ShardMigrator": ("repro.service.cluster.migration", "ShardMigrator"),
    "run_cluster_loadgen": ("repro.service.cluster.loadgen",
                            "run_cluster_loadgen"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
