"""Subscriber SDK for the live coordinator.

A :class:`ServiceClient` subscribes to query-result notifications,
maintains the latest value per query, and records per-notification
latency samples (server send time → client receive time, plus the
end-to-end refresh → notify path when the triggering refresh was
timestamped).  It works over any :class:`MessageStream` — TCP or the
in-process loopback.
"""

from __future__ import annotations

import asyncio
import time as _time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.service import protocol
from repro.service.protocol import MessageType, ProtocolError
from repro.service.transports import MessageStream, open_tcp_stream


class ServiceClient:
    """Track live query values pushed by a :class:`CoordinatorServer`."""

    def __init__(self, stream: MessageStream,
                 clock: Callable[[], float] = _time.time,
                 close_timeout: float = 1.0):
        self.stream = stream
        self.clock = clock
        #: how long :meth:`close` waits for the listener task to drain
        #: before cancelling it outright.
        self.close_timeout = float(close_timeout)
        #: latest value per subscribed query (snapshot + notifies).
        self.values: Dict[str, float] = {}
        #: queries the coordinator currently serves with honestly widened
        #: bounds (query name → widened QAB), per the lease machinery; an
        #: empty map means every subscribed query is fully guaranteed.
        self.degraded: Dict[str, float] = {}
        self.notifies_received = 0
        self.updates_received = 0
        #: end-to-end latency samples in seconds (refresh sent → notify
        #: received); only populated when sources timestamp refreshes.
        self.latencies: List[float] = []
        self._listener: Optional[asyncio.Task] = None
        self._snapshot_waiters: "List[asyncio.Future]" = []
        self.stats_seen: Dict[str, Any] = {}

    @classmethod
    async def connect_tcp(cls, host: str, port: int) -> "ServiceClient":
        return cls(await open_tcp_stream(host, port))

    async def subscribe(self, queries: object = "*",
                        definitions: object = None) -> Dict[str, float]:
        """Send QUERY_SUB, start listening, return the initial snapshot.

        ``definitions`` optionally registers new queries on the server
        (PolynomialQuery objects or wire dicts) — they are implicitly
        part of the subscription."""
        loop = asyncio.get_event_loop()
        waiter: asyncio.Future = loop.create_future()
        self._snapshot_waiters.append(waiter)
        await self.stream.send(protocol.query_sub(queries, definitions))
        self._listener = asyncio.ensure_future(self._listen())
        return await waiter

    async def request_snapshot(self) -> Dict[str, float]:
        """Ask for (and wait for) a fresh authoritative snapshot."""
        loop = asyncio.get_event_loop()
        waiter: asyncio.Future = loop.create_future()
        self._snapshot_waiters.append(waiter)
        await self.stream.send(protocol.snapshot())
        return await waiter

    async def _listen(self) -> None:
        try:
            while True:
                message = await self.stream.receive()
                if message is None:
                    break
                try:
                    kind = protocol.validate_message(message)
                except ProtocolError:
                    break
                if kind is MessageType.NOTIFY:
                    self._on_notify(message)
                elif kind is MessageType.SNAPSHOT:
                    self._on_snapshot(message)
                elif kind is MessageType.ERROR:
                    break
        except (ProtocolError, asyncio.CancelledError):
            pass
        finally:
            for waiter in self._snapshot_waiters:
                if not waiter.done():
                    waiter.set_exception(
                        ProtocolError("connection closed before snapshot"))
            self._snapshot_waiters.clear()

    def _apply_degraded(self, message: Dict[str, Any]) -> None:
        # The field, when present, is the *complete* current map — an
        # empty dict is the all-clear, so replace rather than merge.
        degraded = message.get("degraded")
        if degraded is not None:
            self.degraded = {name: float(bound)
                             for name, bound in degraded.items()}

    def _on_notify(self, message: Dict[str, Any]) -> None:
        self.notifies_received += 1
        for update in message["updates"]:
            self.values[update["query"]] = float(update["value"])
            self.updates_received += 1
        self._apply_degraded(message)
        origin = message.get("refresh_sent_at")
        if origin is not None:
            self.latencies.append(max(0.0, self.clock() - float(origin)))

    def _on_snapshot(self, message: Dict[str, Any]) -> None:
        values = message.get("values") or {}
        self.values.update({name: float(v) for name, v in values.items()})
        self.stats_seen = message.get("stats") or {}
        self._apply_degraded(message)
        if self._snapshot_waiters:
            waiter = self._snapshot_waiters.pop(0)
            if not waiter.done():
                waiter.set_result(dict(values))

    async def close(self) -> None:
        self.stream.close()
        if self._listener is not None and not self._listener.done():
            try:
                await asyncio.wait_for(self._listener,
                                       timeout=self.close_timeout)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._listener.cancel()


def latency_percentiles(samples: Sequence[float],
                        percentiles: Sequence[float] = (50.0, 95.0, 99.0),
                        ) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., ...}`` (empty input → empty dict)."""
    if not samples:
        return {}
    ordered = sorted(samples)
    out: Dict[str, float] = {}
    for p in percentiles:
        rank = min(len(ordered) - 1,
                   max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
        out[f"p{p:g}"] = ordered[rank]
    return out
