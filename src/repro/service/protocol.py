"""Framed, versioned wire protocol for the live service.

Every message is one *frame*: a 4-byte big-endian unsigned length prefix
followed by that many bytes of UTF-8 JSON.  The JSON object always carries

* ``"v"`` — the protocol version (:data:`PROTOCOL_VERSION`); a peer
  rejects frames from a different major version instead of guessing, and
* ``"type"`` — one of :class:`MessageType`.

The message vocabulary mirrors the simulator's event kinds so the
recovery semantics proven there carry over to the wire:

=================  =======================================================
``REGISTER_SOURCE``  a source announces itself and its items; the server
                     replies with a ``DAB_UPDATE`` programming the
                     source's current primary DABs (also the resync path
                     after a reconnect)
``REFRESH``          a source pushes one item's new value; carries the
                     per-item monotone ``seq`` number (duplicate /
                     reordered deliveries are rejected exactly like the
                     simulator's fault-mode dedup) and optionally
                     ``resync``/``sent_at``
``DAB_UPDATE``       server → source: new primary DABs, each with its
                     per-item monotone *epoch* — a source applies a bound
                     only if the epoch is newer than the one it holds, so
                     in-flight reorder and duplicates are idempotent
``HEARTBEAT``        a source's liveness beacon carrying per-item refresh
                     seq numbers (lost-refresh gap detection)
``QUERY_SUB``        a client subscribes to query-result notifications
``NOTIFY``           server → client: batched query-value updates
``SNAPSHOT``         request (no ``values``) / response (``values`` and
                     server ``stats``)
``ERROR``            either direction: a fatal protocol complaint
=================  =======================================================

Framing is deliberately boring — length-prefixed JSON decodes in any
language, and the :class:`FrameDecoder` below handles partial frames,
rejects oversized ones before buffering them, and never trusts the peer.
"""

from __future__ import annotations

import enum
import json
import struct
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import ReproError

#: Bumped on any incompatible message/framing change.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's JSON body.  A peer announcing a larger
#: frame is protocol-violating (or hostile): the decoder raises before
#: buffering a single body byte.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


class ProtocolError(ReproError):
    """A malformed, oversized, unknown or version-mismatched message."""


class MessageType(enum.Enum):
    REGISTER_SOURCE = "register_source"
    REFRESH = "refresh"
    DAB_UPDATE = "dab_update"
    HEARTBEAT = "heartbeat"
    QUERY_SUB = "query_sub"
    NOTIFY = "notify"
    SNAPSHOT = "snapshot"
    ERROR = "error"

    @classmethod
    def from_wire(cls, value: object) -> "MessageType":
        try:
            return cls(value)
        except ValueError:
            raise ProtocolError(f"unknown message type {value!r}")


#: Fields (beyond ``v``/``type``) a message of each type must carry.
_REQUIRED: Dict[MessageType, Sequence[str]] = {
    MessageType.REGISTER_SOURCE: ("source_id", "items"),
    MessageType.REFRESH: ("source_id", "item", "value", "seq"),
    MessageType.DAB_UPDATE: ("source_id", "bounds", "epochs"),
    MessageType.HEARTBEAT: ("source_id", "seqs"),
    MessageType.QUERY_SUB: ("queries",),
    MessageType.NOTIFY: ("updates",),
    MessageType.SNAPSHOT: (),
    MessageType.ERROR: ("reason",),
}


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_frame(message: Mapping[str, Any],
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame for ``message`` (length prefix + compact JSON)."""
    body = json.dumps(message, separators=(",", ":"), sort_keys=True,
                      allow_nan=False).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise ProtocolError(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame decoder: feed arbitrary byte chunks, get messages.

    Partial frames stay buffered across :meth:`feed` calls; a frame whose
    announced length exceeds ``max_frame_bytes`` raises
    :class:`ProtocolError` *before* its body is buffered, as does a body
    that is not valid JSON or not a JSON object.  After an error the
    decoder is poisoned — the only safe recovery from corrupt framing is
    closing the connection.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Buffer ``data``; return every message completed by it."""
        if self._poisoned:
            raise ProtocolError("decoder already failed; close the connection")
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                self._poisoned = True
                raise ProtocolError(
                    f"peer announced a {length}-byte frame; limit is "
                    f"{self.max_frame_bytes}")
            if len(self._buffer) < HEADER_BYTES + length:
                return messages
            body = bytes(self._buffer[HEADER_BYTES:HEADER_BYTES + length])
            del self._buffer[:HEADER_BYTES + length]
            try:
                message = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self._poisoned = True
                raise ProtocolError(f"undecodable frame body: {error}")
            if not isinstance(message, dict):
                self._poisoned = True
                raise ProtocolError(
                    f"frame body must be a JSON object, got {type(message).__name__}")
            messages.append(message)


def validate_message(message: Mapping[str, Any]) -> MessageType:
    """Check version, type and required fields; return the parsed type."""
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"speaking {PROTOCOL_VERSION}")
    kind = MessageType.from_wire(message.get("type"))
    missing = [name for name in _REQUIRED[kind] if name not in message]
    if missing:
        raise ProtocolError(
            f"{kind.value} message missing fields: {', '.join(missing)}")
    return kind


# ---------------------------------------------------------------------------
# message constructors
# ---------------------------------------------------------------------------

def _message(kind: MessageType, **fields: Any) -> Dict[str, Any]:
    body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "type": kind.value}
    body.update({name: value for name, value in fields.items()
                 if value is not None})
    return body


def register_source(source_id: int, items: Iterable[str]) -> Dict[str, Any]:
    return _message(MessageType.REGISTER_SOURCE, source_id=int(source_id),
                    items=sorted(items))


def refresh(source_id: int, item: str, value: float, seq: int, *,
            resync: bool = False,
            sent_at: Optional[float] = None) -> Dict[str, Any]:
    return _message(MessageType.REFRESH, source_id=int(source_id), item=item,
                    value=float(value), seq=int(seq),
                    resync=True if resync else None, sent_at=sent_at)


def dab_update(source_id: int, bounds: Mapping[str, float],
               epochs: Mapping[str, int]) -> Dict[str, Any]:
    return _message(MessageType.DAB_UPDATE, source_id=int(source_id),
                    bounds={k: float(v) for k, v in bounds.items()},
                    epochs={k: int(v) for k, v in epochs.items()})


def heartbeat(source_id: int, seqs: Mapping[str, int]) -> Dict[str, Any]:
    return _message(MessageType.HEARTBEAT, source_id=int(source_id),
                    seqs={k: int(v) for k, v in seqs.items()})


def query_sub(queries: object = "*") -> Dict[str, Any]:
    """Subscribe to ``queries`` — a list of query names, or ``"*"``."""
    if queries != "*":
        queries = sorted(queries)
    return _message(MessageType.QUERY_SUB, queries=queries)


def notify(updates: Sequence[Mapping[str, Any]], *,
           sent_at: Optional[float] = None,
           refresh_sent_at: Optional[float] = None) -> Dict[str, Any]:
    """Batched query-value updates: ``[{"query", "value"}, ...]``.

    ``refresh_sent_at`` echoes the triggering refresh's ``sent_at`` so a
    subscriber can measure end-to-end notify latency without clock games.
    """
    return _message(MessageType.NOTIFY, updates=list(updates),
                    sent_at=sent_at, refresh_sent_at=refresh_sent_at)


def snapshot(values: Optional[Mapping[str, float]] = None,
             stats: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Request form (no ``values``) or response form (with them)."""
    return _message(MessageType.SNAPSHOT, values=dict(values) if values is not None else None,
                    stats=dict(stats) if stats is not None else None)


def error(reason: str) -> Dict[str, Any]:
    return _message(MessageType.ERROR, reason=str(reason))
