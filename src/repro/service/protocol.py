"""Framed, versioned wire protocol for the live service.

Every message is one *frame*: a 4-byte big-endian unsigned length prefix
followed by that many bytes of UTF-8 JSON.  The JSON object always carries

* ``"v"`` — the protocol version (:data:`PROTOCOL_VERSION`); a peer
  rejects frames from a different major version instead of guessing, and
* ``"type"`` — one of :class:`MessageType`.

The message vocabulary mirrors the simulator's event kinds so the
recovery semantics proven there carry over to the wire:

=================  =======================================================
``REGISTER_SOURCE``  a source announces itself and its items; the server
                     replies with a ``DAB_UPDATE`` programming the
                     source's current primary DABs (also the resync path
                     after a reconnect)
``REFRESH``          a source pushes one item's new value; carries the
                     per-item monotone ``seq`` number (duplicate /
                     reordered deliveries are rejected exactly like the
                     simulator's fault-mode dedup) and optionally
                     ``resync``/``sent_at``
``DAB_UPDATE``       server → source: new primary DABs, each with its
                     per-item monotone *epoch* — a source applies a bound
                     only if the epoch is newer than the one it holds, so
                     in-flight reorder and duplicates are idempotent; the
                     registration reply additionally carries ``seqs``,
                     the server's accepted refresh high-water marks, so a
                     restarted source resumes seq numbering above them
``DAB_ACK``          source → server: receipt for a ``msg_id``-tagged
                     ``DAB_UPDATE`` (the server retries unacked bound
                     changes with backoff, so a dropped bound cannot
                     silently leave a source filtering on stale DABs)
``HEARTBEAT``        a source's liveness beacon carrying per-item refresh
                     seq numbers (lost-refresh gap detection)
``QUERY_SUB``        a client subscribes to query-result notifications
``NOTIFY``           server → client: batched query-value updates
``SNAPSHOT``         request (no ``values``) / response (``values`` and
                     server ``stats``)
``ERROR``            either direction: a fatal protocol complaint
=================  =======================================================

Framing is deliberately boring — length-prefixed JSON decodes in any
language, and the :class:`FrameDecoder` below handles partial frames,
rejects oversized ones before buffering them, and never trusts the peer.
"""

from __future__ import annotations

import enum
import json
import math
import struct
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import ReproError

#: Bumped on any incompatible message/framing change.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's JSON body.  A peer announcing a larger
#: frame is protocol-violating (or hostile): the decoder raises before
#: buffering a single body byte.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


def _reject_constant(token: str) -> float:
    # ``encode_frame`` refuses NaN/Infinity (allow_nan=False); mirror that
    # on decode — ``json.loads`` would happily parse them otherwise, and a
    # NaN value poisons caches silently downstream.
    raise ValueError(f"non-finite JSON constant {token!r} is not allowed")


class ProtocolError(ReproError):
    """A malformed, oversized, unknown or version-mismatched message."""


class MessageType(enum.Enum):
    REGISTER_SOURCE = "register_source"
    REFRESH = "refresh"
    DAB_UPDATE = "dab_update"
    DAB_ACK = "dab_ack"
    HEARTBEAT = "heartbeat"
    QUERY_SUB = "query_sub"
    NOTIFY = "notify"
    SNAPSHOT = "snapshot"
    ERROR = "error"

    @classmethod
    def from_wire(cls, value: object) -> "MessageType":
        try:
            return cls(value)
        except ValueError:
            raise ProtocolError(f"unknown message type {value!r}")


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: object) -> bool:
    # Finite only: a NaN would poison the cache silently (every window
    # and QAB comparison against NaN is False, so nothing ever fires).
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value))


def _is_str(value: object) -> bool:
    return isinstance(value, str)


def _is_str_list(value: object) -> bool:
    return (isinstance(value, list)
            and all(isinstance(item, str) for item in value))


def _is_number_map(value: object) -> bool:
    return (isinstance(value, dict)
            and all(isinstance(k, str) and _is_number(v)
                    for k, v in value.items()))


def _is_int_map(value: object) -> bool:
    return (isinstance(value, dict)
            and all(isinstance(k, str) and _is_int(v)
                    for k, v in value.items()))


def _is_queries(value: object) -> bool:
    return value == "*" or _is_str_list(value)


def _is_exponent_map(value: object) -> bool:
    return (isinstance(value, dict) and len(value) > 0
            and all(isinstance(k, str) and _is_int(v) and v > 0
                    for k, v in value.items()))


def _is_definition(value: object) -> bool:
    if not isinstance(value, dict):
        return False
    if not (_is_str(value.get("name")) and value["name"]):
        return False
    qab = value.get("qab")
    if not (_is_number(qab) and qab > 0):
        return False
    terms = value.get("terms")
    if not (isinstance(terms, list) and terms):
        return False
    return all(isinstance(term, dict)
               and _is_number(term.get("weight")) and term["weight"] != 0
               and _is_exponent_map(term.get("exponents"))
               for term in terms)


def _is_definitions(value: object) -> bool:
    return isinstance(value, list) and all(_is_definition(v) for v in value)


def _is_list(value: object) -> bool:
    return isinstance(value, list)


#: Fields (beyond ``v``/``type``) a message of each type must carry, each
#: with its shape check — presence alone is not enough, because a peer
#: sending e.g. a string seq or a list of bounds must get a clean
#: protocol error, not an uncaught TypeError in a handler.
_REQUIRED: Dict[MessageType, Dict[str, Callable[[object], bool]]] = {
    MessageType.REGISTER_SOURCE: {"source_id": _is_int, "items": _is_str_list},
    MessageType.REFRESH: {"source_id": _is_int, "item": _is_str,
                          "value": _is_number, "seq": _is_int},
    MessageType.DAB_UPDATE: {"source_id": _is_int, "bounds": _is_number_map,
                             "epochs": _is_int_map},
    MessageType.DAB_ACK: {"source_id": _is_int, "msg_id": _is_int},
    MessageType.HEARTBEAT: {"source_id": _is_int, "seqs": _is_int_map},
    MessageType.QUERY_SUB: {"queries": _is_queries},
    MessageType.NOTIFY: {"updates": _is_list},
    MessageType.SNAPSHOT: {},
    MessageType.ERROR: {"reason": _is_str},
}

#: Optional fields that are still shape-checked when present.
_OPTIONAL: Dict[MessageType, Dict[str, Callable[[object], bool]]] = {
    # ``map_epoch`` fences a frame against the shard map that produced
    # it: after a live reshard bumps the cluster's map epoch, frames
    # stamped with an older epoch are rejected instead of applied, so a
    # lagging shard (or a buffered frame from before the cutover) can
    # never act on an item it no longer owns.  Absent everywhere until
    # the first rebalance — pre-reshard traffic stays byte-identical.
    MessageType.REFRESH: {"resync": lambda v: isinstance(v, bool),
                          "sent_at": _is_number, "map_epoch": _is_int},
    # ``msg_id`` asks the source to DAB_ACK (reliable delivery under
    # chaos); ``probe`` asks it to immediately resend the listed items'
    # current values (the lease-expiry recovery path).
    MessageType.DAB_UPDATE: {"seqs": _is_int_map, "msg_id": _is_int,
                             "probe": _is_str_list},
    # ``degraded`` maps query names to the honestly-widened accuracy
    # bound the coordinator can currently promise (stale inputs); an
    # empty map clears a previous degradation.
    # ``shard`` tags a frame with the emitting coordinator shard, so a
    # cluster router can attribute partial aggregates without trusting
    # stream bookkeeping alone; single-node servers omit it.
    MessageType.NOTIFY: {"sent_at": _is_number, "refresh_sent_at": _is_number,
                         "degraded": _is_number_map, "shard": _is_int,
                         "map_epoch": _is_int},
    MessageType.SNAPSHOT: {"degraded": _is_number_map, "shard": _is_int,
                           "map_epoch": _is_int},
    # ``definitions`` lets a subscriber *register* queries it wants served
    # (the incremental bank-append path) instead of only naming existing
    # ones; each entry is ``{"name", "qab", "terms": [{"weight",
    # "exponents"}]}`` — the same wire shape the journal's ``qadd``
    # records use, so replay and subscription decode identically.
    MessageType.QUERY_SUB: {"definitions": _is_definitions,
                            # ``trunk`` marks the subscription as
                            # infrastructure (a cluster router's shard
                            # aggregation trunk, a fan-out broker's
                            # upstream): the server grants it a deep
                            # notify queue instead of the user-facing
                            # slow-consumer limit, because evicting a
                            # trunk silently severs every client behind
                            # it rather than shedding one laggard.
                            "trunk": lambda v: isinstance(v, bool)},
}


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_body(message: Mapping[str, Any]) -> bytes:
    """The canonical byte encoding of one message (compact sorted JSON,
    non-finite floats rejected).  Shared by the wire framing below and by
    the coordinator's write-ahead journal, so journal records are decoded
    by exactly the code path that decodes wire frames."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True,
                      allow_nan=False).encode("utf-8")


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse one encoded body back into a message dict.

    Raises :class:`ProtocolError` on undecodable bytes, non-finite JSON
    constants, or a body that is not a JSON object — the same failure
    surface whether the bytes came off a socket or out of a journal."""
    try:
        message = json.loads(body.decode("utf-8"),
                             parse_constant=_reject_constant)
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"undecodable frame body: {error}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def encode_frame(message: Mapping[str, Any],
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame for ``message`` (length prefix + compact JSON)."""
    body = encode_body(message)
    if len(body) > max_frame_bytes:
        raise ProtocolError(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame decoder: feed arbitrary byte chunks, get messages.

    Partial frames stay buffered across :meth:`feed` calls; a frame whose
    announced length exceeds ``max_frame_bytes`` raises
    :class:`ProtocolError` *before* its body is buffered, as does a body
    that is not valid JSON or not a JSON object.  After an error the
    decoder is poisoned — the only safe recovery from corrupt framing is
    closing the connection.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Buffer ``data``; return every message completed by it."""
        if self._poisoned:
            raise ProtocolError("decoder already failed; close the connection")
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                self._poisoned = True
                raise ProtocolError(
                    f"peer announced a {length}-byte frame; limit is "
                    f"{self.max_frame_bytes}")
            if len(self._buffer) < HEADER_BYTES + length:
                return messages
            body = bytes(self._buffer[HEADER_BYTES:HEADER_BYTES + length])
            del self._buffer[:HEADER_BYTES + length]
            try:
                messages.append(decode_body(body))
            except ProtocolError:
                self._poisoned = True
                raise


def validate_message(message: Mapping[str, Any]) -> MessageType:
    """Check version, type and field presence *and shape*; return the type.

    Shape checks are strict: numeric fields must be finite JSON numbers
    (no bools, no numeric strings, no NaN/Infinity), maps must be string
    keyed.  A message that fails here must never reach a handler.
    """
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"speaking {PROTOCOL_VERSION}")
    kind = MessageType.from_wire(message.get("type"))
    required = _REQUIRED[kind]
    missing = [name for name in required if name not in message]
    if missing:
        raise ProtocolError(
            f"{kind.value} message missing fields: {', '.join(missing)}")
    for name, well_formed in required.items():
        if not well_formed(message[name]):
            raise ProtocolError(
                f"{kind.value} field {name!r} is malformed: {message[name]!r}")
    for name, well_formed in _OPTIONAL.get(kind, {}).items():
        if name in message and not well_formed(message[name]):
            raise ProtocolError(
                f"{kind.value} field {name!r} is malformed: {message[name]!r}")
    return kind


# ---------------------------------------------------------------------------
# message constructors
# ---------------------------------------------------------------------------

def _message(kind: MessageType, **fields: Any) -> Dict[str, Any]:
    body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "type": kind.value}
    body.update({name: value for name, value in fields.items()
                 if value is not None})
    return body


def register_source(source_id: int, items: Iterable[str]) -> Dict[str, Any]:
    return _message(MessageType.REGISTER_SOURCE, source_id=int(source_id),
                    items=sorted(items))


def refresh(source_id: int, item: str, value: float, seq: int, *,
            resync: bool = False,
            sent_at: Optional[float] = None,
            map_epoch: Optional[int] = None) -> Dict[str, Any]:
    return _message(MessageType.REFRESH, source_id=int(source_id), item=item,
                    value=float(value), seq=int(seq),
                    resync=True if resync else None, sent_at=sent_at,
                    map_epoch=int(map_epoch) if map_epoch is not None
                    else None)


def dab_update(source_id: int, bounds: Mapping[str, float],
               epochs: Mapping[str, int],
               seqs: Optional[Mapping[str, int]] = None,
               msg_id: Optional[int] = None,
               probe: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    """``seqs``, sent only in the registration reply, carries the server's
    highest accepted refresh seq per item so a restarted source (whose
    counters are back at 0) can resume numbering above the dedup guard.

    ``msg_id`` requests a :func:`dab_ack` (the server retries unacked
    bound changes under its retry policy); ``probe`` lists items whose
    current value the source must resend immediately, DAB filter or not
    — how a lease-expired item's true value is recovered."""
    return _message(MessageType.DAB_UPDATE, source_id=int(source_id),
                    bounds={k: float(v) for k, v in bounds.items()},
                    epochs={k: int(v) for k, v in epochs.items()},
                    seqs={k: int(v) for k, v in seqs.items()}
                    if seqs is not None else None,
                    msg_id=int(msg_id) if msg_id is not None else None,
                    probe=sorted(probe) if probe is not None else None)


def dab_ack(source_id: int, msg_id: int) -> Dict[str, Any]:
    """A source's receipt for a ``msg_id``-tagged DAB_UPDATE."""
    return _message(MessageType.DAB_ACK, source_id=int(source_id),
                    msg_id=int(msg_id))


def heartbeat(source_id: int, seqs: Mapping[str, int]) -> Dict[str, Any]:
    return _message(MessageType.HEARTBEAT, source_id=int(source_id),
                    seqs={k: int(v) for k, v in seqs.items()})


def query_sub(queries: object = "*",
              definitions: Optional[Sequence[Any]] = None,
              trunk: bool = False) -> Dict[str, Any]:
    """Subscribe to ``queries`` — a list of query names, or ``"*"``.

    ``definitions`` optionally carries :class:`PolynomialQuery` objects
    (or already-wire-shaped dicts) to *register* before subscribing —
    the incremental bank-append path; the server rejects a definition
    whose name is taken by a structurally different query.

    ``trunk=True`` declares the subscription infrastructure-grade (a
    router's shard trunk, a broker's upstream) so the server sizes its
    notify queue for aggregation fan-in instead of a single laggard
    client; the field is omitted when false so ordinary subscription
    frames stay byte-identical."""
    if queries != "*":
        queries = sorted(queries)
    wire_defs = None
    if definitions is not None:
        wire_defs = [entry if isinstance(entry, dict) else query_to_wire(entry)
                     for entry in definitions]
    return _message(MessageType.QUERY_SUB, queries=queries,
                    definitions=wire_defs,
                    trunk=True if trunk else None)


def query_to_wire(query: Any) -> Dict[str, Any]:
    """The canonical wire/journal encoding of one polynomial query."""
    return {
        "name": query.name,
        "qab": float(query.qab),
        "terms": [{"weight": float(term.weight),
                   "exponents": {k: int(v)
                                 for k, v in sorted(term.exponents.items())}}
                  for term in query.terms],
    }


def query_from_wire(data: Mapping[str, Any]) -> Any:
    """Decode a :func:`query_to_wire` dict back into a PolynomialQuery.

    Raises :class:`ProtocolError` on a malformed definition — the same
    failure surface whether the dict came off a socket or a journal."""
    if not _is_definition(data):
        raise ProtocolError(f"malformed query definition: {data!r}")
    from repro.queries.polynomial import PolynomialQuery
    from repro.queries.terms import QueryTerm
    try:
        terms = [QueryTerm(term["weight"], term["exponents"])
                 for term in data["terms"]]
        return PolynomialQuery(terms, data["qab"], data["name"])
    except ReproError as error:
        raise ProtocolError(f"invalid query definition: {error}")


def notify(updates: Sequence[Mapping[str, Any]], *,
           sent_at: Optional[float] = None,
           refresh_sent_at: Optional[float] = None,
           degraded: Optional[Mapping[str, float]] = None,
           shard: Optional[int] = None,
           map_epoch: Optional[int] = None) -> Dict[str, Any]:
    """Batched query-value updates: ``[{"query", "value"}, ...]``.

    ``refresh_sent_at`` echoes the triggering refresh's ``sent_at`` so a
    subscriber can measure end-to-end notify latency without clock games.
    ``degraded`` maps query names to honestly-widened accuracy bounds
    while their inputs are lease-expired; ``{}`` clears the flag.
    ``shard`` marks the values as one shard's *partial aggregates* in a
    cluster (absent from single-node servers); ``map_epoch`` stamps the
    shard-map epoch the emitter holds so routers can fence frames from
    before a reshard cutover.
    """
    return _message(MessageType.NOTIFY, updates=list(updates),
                    sent_at=sent_at, refresh_sent_at=refresh_sent_at,
                    degraded=dict(degraded) if degraded is not None else None,
                    shard=int(shard) if shard is not None else None,
                    map_epoch=int(map_epoch) if map_epoch is not None
                    else None)


def snapshot(values: Optional[Mapping[str, float]] = None,
             stats: Optional[Mapping[str, Any]] = None,
             degraded: Optional[Mapping[str, float]] = None,
             shard: Optional[int] = None,
             map_epoch: Optional[int] = None) -> Dict[str, Any]:
    """Request form (no ``values``) or response form (with them)."""
    return _message(MessageType.SNAPSHOT, values=dict(values) if values is not None else None,
                    stats=dict(stats) if stats is not None else None,
                    degraded=dict(degraded) if degraded is not None else None,
                    shard=int(shard) if shard is not None else None,
                    map_epoch=int(map_epoch) if map_epoch is not None
                    else None)


def error(reason: str) -> Dict[str, Any]:
    return _message(MessageType.ERROR, reason=str(reason))
