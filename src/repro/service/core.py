"""The protocol-agnostic coordinator core.

Everything a coordinator does that does not touch a transport lives here:
the item-value cache, query evaluation (scalar or through the compiled
:class:`~repro.queries.compiled.CompiledQueryBank`), secondary-DAB window
checks, recomputation through the planner stack (with GP-solver failure
degradation), per-item DAB epochs, and the merged-bound diffing that
decides which sources must be told about a plan change.

Two runtimes share this class verbatim:

* the discrete-event simulator's
  :class:`~repro.simulation.coordinator.Coordinator`, which wraps it in an
  event-loop adapter (busy-server modelling, Pareto delays, fault
  injection, staleness leases), and
* the live :class:`~repro.service.server.CoordinatorServer`, which wraps
  it in an asyncio socket server speaking the framed wire protocol of
  :mod:`repro.service.protocol`.

Because both adapters call the exact same code in the exact same order,
the simulator's golden-metric tests double as a correctness pin for the
live service's planning and recomputation behaviour (DESIGN.md §9).

This module must not import :mod:`repro.simulation` — the dependency runs
the other way.
"""

from __future__ import annotations

import enum
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.exceptions import GPError, SimulationError
from repro.filters.assignment import DABAssignment, merge_primary
from repro.queries.bank_index import (
    BANK_INDEX_MODES,
    SharedStructureBank,
    TemplateWindowState,
)
from repro.queries.compiled import (
    CompiledPolynomial,
    CompiledQueryBank,
    PowerTable,
)
from repro.queries.polynomial import PolynomialQuery

#: Relative change below which a DAB update is not worth a message.
_DAB_CHANGE_REL_TOL = 1e-9

#: One source's pending update: ``(bounds, epochs)`` keyed by item name.
BoundUpdate = Tuple[Dict[str, float], Dict[str, int]]


class RecomputeMode(enum.Enum):
    EVERY_REFRESH = "every_refresh"
    ON_WINDOW_VIOLATION = "on_window_violation"
    AAO_PERIODIC = "aao_periodic"


class CoordinatorCore:
    """Transport-free coordinator state machine.

    The adapter owning the core drives it through four entry points:

    * :meth:`bootstrap` — plan every query at the initial values and
      return the merged primary DABs for the sources;
    * :meth:`apply_refresh` — an accepted refresh lands in the cache;
    * :meth:`react_to_refresh` — notify/recompute per the configured
      :class:`RecomputeMode`, returning the user notifications and
      whether any plan changed;
    * :meth:`changed_bound_updates` — the per-source DAB updates (with
      fresh epochs) that the adapter must deliver.

    ``recompute_hook``, when set, is invoked once per recomputation *in
    recomputation order* — the simulator uses it to charge solver time to
    its busy-server clock without the core knowing about clocks.
    """

    def __init__(
        self,
        queries: Sequence[PolynomialQuery],
        planner: object,
        mode: RecomputeMode,
        metrics: object,
        initial_values: Mapping[str, float],
        item_to_source: Mapping[str, int],
        aao_planner: Optional[object] = None,
        aao_period: Optional[int] = None,
        vectorize: bool = False,
        recompute_hook: Optional[Callable[[], None]] = None,
        solver_breaker: Optional[object] = None,
        breaker_shrink: float = 0.9,
        recompute_strategy: str = "full",
        bank_index: str = "flat",
    ):
        if not queries:
            raise SimulationError("a coordinator needs at least one query")
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise SimulationError("query names must be unique at a coordinator")
        self.query_names = set(names)
        if mode is RecomputeMode.AAO_PERIODIC:
            if aao_planner is None or aao_period is None or aao_period < 1:
                raise SimulationError(
                    "AAO_PERIODIC mode needs an aao_planner and a period >= 1"
                )

        self.queries = list(queries)
        self.planner = planner
        self.mode = mode
        self.metrics = metrics
        self.aao_planner = aao_planner
        self.aao_period = aao_period
        self.item_to_source = dict(item_to_source)
        self.recompute_hook = recompute_hook
        #: Optional circuit breaker around the GP solve (see
        #: :mod:`repro.service.resilience`).  ``None`` — the default, and
        #: what the simulator always passes — leaves every code path
        #: bit-identical to the breaker-less implementation.
        self.solver_breaker = solver_breaker
        if not (0.0 < breaker_shrink <= 1.0):
            raise SimulationError(
                f"breaker_shrink must be in (0, 1], got {breaker_shrink!r}")
        self.breaker_shrink = float(breaker_shrink)
        #: How the planner stack answers window breaches: ``"full"`` (the
        #: classic multi-start solve; named ``recompute_strategy`` here to
        #: avoid colliding with :class:`RecomputeMode`, the *trigger*
        #: policy) or ``"delta"`` (Newton-KKT patch with full-solve
        #: fallback).  Journaled with every plan record when not "full" so
        #: a replayed run can prove it restored under the same strategy.
        if recompute_strategy not in ("full", "delta"):
            raise SimulationError(
                f"recompute_strategy must be 'full' or 'delta', "
                f"got {recompute_strategy!r}")
        self.recompute_strategy = recompute_strategy
        #: How the query bank is compiled: ``"flat"`` (one gather row per
        #: term per query — the golden-pinned classic path) or
        #: ``"shared"`` (structure-deduplicating
        #: :class:`~repro.queries.bank_index.SharedStructureBank`: one
        #: gather per distinct structure, per-query coefficient matrices,
        #: slack-screened notifications and per-template window checks).
        #: Journaled with every plan record when not "flat", mirroring
        #: the ``recompute_strategy`` stamp.
        if bank_index not in BANK_INDEX_MODES:
            raise SimulationError(
                f"bank_index must be one of {BANK_INDEX_MODES}, "
                f"got {bank_index!r}")
        if bank_index == "shared" and not vectorize:
            raise SimulationError(
                "bank_index='shared' requires vectorize=True")
        self.bank_index_mode = bank_index
        #: query name -> (source plan, its shrunk stand-in) while the
        #: breaker is open (cached so shrinkage never compounds).
        self._breaker_plans: Dict[str, Tuple[DABAssignment, DABAssignment]] = {}
        #: Optional write-ahead journal (:mod:`repro.service.journal`).
        #: ``None`` — the default, and what the simulator always uses —
        #: leaves every code path identical to the journal-less core.
        #: Attached by :meth:`CoordinatorServer.restore` *after* replay so
        #: recovery itself is never re-journaled.
        self.journal: Optional[object] = None

        self.cache: Dict[str, float] = {
            name: float(initial_values[name])
            for q in self.queries for name in q.variables
        }
        #: Items adopted after construction (live resharding hand-offs):
        #: item -> owning source id (or None).  Persisted in
        #: :meth:`recovery_state` and replayed *before* dynamic queries so
        #: a restored shard can re-register sub-queries over migrated
        #: items it was not built with.
        self._adopted_items: Dict[str, Optional[int]] = {}
        self.plans: Dict[str, DABAssignment] = {}
        self.last_user_values: Dict[str, float] = {}
        self._last_sent_bounds: Dict[str, float] = {}

        # -- vectorized fast path (bitwise-equal to the scalar one) -----------
        self._vectorize = bool(vectorize)
        self._compiled: Dict[str, CompiledPolynomial] = {}
        self._power_table: Optional[PowerTable] = None
        self._power_vector: Optional[np.ndarray] = None
        self._bank: Optional[CompiledQueryBank] = None
        self._bank_index: Dict[str, int] = {}
        #: query name -> mutable [plan, missing_ref, breach_count, flags,
        #: references, widened]; maintained incrementally as items refresh,
        #: rebuilt whenever the query's plan object changes.
        self._window_state: Dict[str, list] = {}
        #: Shared-structure index state (``bank_index="shared"`` only):
        #: the deduplicating bank, the lazily-built per-template window
        #: matrices, and the count of O(bank) recompilations (stays 0 on
        #: the shared path — the bounded-work guarantee QUERY_SUB tests).
        self._shared_bank: Optional[SharedStructureBank] = None
        self._tpl_window: Dict[int, TemplateWindowState] = {}
        self.bank_rebuilds = 0
        #: Names added through :meth:`add_query` — persisted in
        #: :meth:`recovery_state` so dynamically-registered queries
        #: survive a snapshot + kill -9 restart.
        self.dynamic_names: set = set()
        #: Names of *static* (construction-time) queries later removed by
        #: :meth:`remove_query`.  A restore rebuilds the original static
        #: bank, so the snapshot must say which of those queries no longer
        #: exist — otherwise a resharded coordinator restores with the
        #: pre-migration sub-query shadowing its re-decomposed replacement.
        self._removed_queries: set = set()

        self.item_index: Dict[str, List[PolynomialQuery]] = {}
        for query in self.queries:
            for name in query.variables:
                self.item_index.setdefault(name, []).append(query)

        #: Vectorized notification state: per-query QABs and the last
        #: user-visible values mirrored as arrays (bank order), plus each
        #: item's affected-query indices, so one masked compare replaces the
        #: per-query notification loop in ``react_to_refresh``.
        self._qab_arr: Optional[np.ndarray] = None
        self._last_user_arr: Optional[np.ndarray] = None
        self._affected_idx: Dict[str, np.ndarray] = {}
        self._item_banks: Dict[str, CompiledQueryBank] = {}
        if self._vectorize:
            self._power_table = PowerTable()
            self._build_vectorized_state()

        #: Per-item monotone DAB epoch (incremented on every shipped change).
        self.epochs: Dict[str, int] = {}

    def _build_vectorized_state(self) -> None:
        """(Re)compile the vectorized evaluation structures.

        The flat path rebuilds everything from the current ``queries``
        list — O(bank), which is fine at construction and is what dynamic
        membership changes cost without the shared index.  The shared
        path builds the structure-deduplicating bank instead of the flat
        per-query/per-item banks; later membership changes append to it
        incrementally (:meth:`add_query`) and never re-enter this method.
        """
        table = self._power_table
        for query in self.queries:
            if query.name not in self._compiled:
                self._compiled[query.name] = CompiledPolynomial(query, table)
        self._bank_index = {query.name: i
                            for i, query in enumerate(self.queries)}
        if self.bank_index_mode == "shared":
            if self._shared_bank is None:
                self._shared_bank = SharedStructureBank(table)
            for query in self.queries:
                if query.name not in self._shared_bank:
                    self._shared_bank.add_query(
                        query, self._bank_index[query.name])
            self._tpl_window.clear()
        else:
            self._bank = CompiledQueryBank(
                [self._compiled[query.name] for query in self.queries])
            self._affected_idx = {
                name: np.array([self._bank_index[q.name] for q in affected],
                               dtype=np.intp)
                for name, affected in self.item_index.items()
            }
            # Per-item sub-banks: a refresh of one item only needs the
            # values of the queries containing it, so evaluating a bank
            # restricted to those rows does strictly less work than the
            # full bank while producing bitwise-identical per-query sums.
            self._item_banks = {
                name: CompiledQueryBank(
                    [self._compiled[q.name] for q in affected])
                for name, affected in self.item_index.items()
            }
        self._power_vector = table.vector(self.cache)
        self._qab_arr = np.array([q.qab for q in self.queries], dtype=float)
        last_user = np.zeros(len(self.queries))
        for i, query in enumerate(self.queries):
            seen = self.last_user_values.get(query.name)
            if seen is not None:
                last_user[i] = seen
        self._last_user_arr = last_user

    # -- bootstrap --------------------------------------------------------------------

    def bootstrap(self) -> Dict[str, float]:
        """Plan every query at the initial values; return the merged primary
        DABs the adapter should seed the sources with (time-zero
        configuration is assumed in place when the observation window
        starts)."""
        if self.mode is RecomputeMode.AAO_PERIODIC:
            multi = self.aao_planner.plan_all(self.queries, self.cache)
            self.plans = dict(multi.per_query)
        else:
            for query in self.queries:
                self.plans[query.name] = self._plan_query(query)
        for index, query in enumerate(self.queries):
            value = self.query_value(query)
            self.last_user_values[query.name] = value
            if self._last_user_arr is not None:
                self._last_user_arr[index] = value
        merged = merge_primary(self.plans.values())
        self._last_sent_bounds = dict(merged)
        return merged

    def owned_bounds(self, merged: Mapping[str, float],
                     source_id: int) -> Dict[str, float]:
        """The subset of ``merged`` owned by ``source_id``."""
        return {name: bound for name, bound in merged.items()
                if self.item_to_source.get(name) == source_id}

    # -- helpers ---------------------------------------------------------------------

    def _values_for(self, query: PolynomialQuery) -> Dict[str, float]:
        return {name: self.cache[name] for name in query.variables}

    @property
    def power_table(self) -> PowerTable:
        """The shared (item, exponent) slot registry (vectorized runs only)."""
        if self._power_table is None:
            raise SimulationError("coordinator was built with vectorize=False")
        return self._power_table

    def compiled_query(self, query: PolynomialQuery) -> CompiledPolynomial:
        """The compiled evaluator for ``query`` (vectorized runs only)."""
        return self._compiled[query.name]

    def query_value(self, query: PolynomialQuery) -> float:
        if self._vectorize:
            return self._compiled[query.name].evaluate_vector(self._power_vector)
        return query.evaluate(self.cache)

    def query_values(self) -> List[float]:
        """Every query's value at the current cache, in ``queries`` order —
        one banked evaluation on vectorized runs."""
        if self._vectorize:
            return self.query_values_array().tolist()
        return [query.evaluate(self.cache) for query in self.queries]

    def query_values_array(self) -> np.ndarray:
        """Array form of :meth:`query_values` (vectorized runs only)."""
        if self._shared_bank is not None:
            return self._shared_bank.values_all(self._power_vector,
                                                len(self.queries))
        return self._bank.values_vector(self._power_vector)

    def bank_stats(self) -> Optional[Dict[str, object]]:
        """The shared-index stats section; ``None`` in flat mode."""
        if self._shared_bank is None:
            return None
        stats = self._shared_bank.stats()
        stats["rebuilds"] = self.bank_rebuilds
        return stats

    def _sync_power_vector(self) -> None:
        """Grow the power vector to cover slots a new template registered
        (values from the current cache — O(new slots), not O(table))."""
        table = self._power_table
        vector = self._power_vector
        if vector.shape[0] == len(table):
            return
        grown = np.empty(len(table))
        grown[: vector.shape[0]] = vector
        for i in range(vector.shape[0] - 1, len(table.pairs)):
            name, exponent = table.pairs[i]
            grown[i + 1] = self.cache[name] ** exponent
        self._power_vector = grown

    def _ensure_query_capacity(self, size: int) -> None:
        """Amortised growth of the per-query arrays (shared adds are
        O(1) per subscribe, not O(bank))."""
        if self._qab_arr.shape[0] >= size:
            return
        capacity = max(size, 2 * self._qab_arr.shape[0])
        for attr in ("_qab_arr", "_last_user_arr"):
            old = getattr(self, attr)
            grown = np.zeros(capacity)
            grown[: old.shape[0]] = old
            setattr(self, attr, grown)

    def uncertainty_widened_bound(self, query: PolynomialQuery,
                                  drifts: Mapping[str, float]) -> float:
        """The accuracy bound honestly reportable with stale inputs.

        ``drifts`` maps each suspect item to the absolute drift it is
        conservatively assumed to have accumulated since last heard from.
        The query's QAB is widened by its worst-case response to each
        drift (evaluated one item at a time, the simulator's PR-1
        staleness-lease semantics — iteration order is the caller's, so
        the float summation order is exactly what it passes in).
        """
        extra = 0.0
        cache = self.cache
        base = self.query_value(query)
        for name, drift in drifts.items():
            perturbed = dict(cache)
            perturbed[name] = cache[name] + drift
            up = abs(query.evaluate(perturbed) - base)
            perturbed[name] = cache[name] - drift
            down = abs(query.evaluate(perturbed) - base)
            extra += max(up, down)
        return query.qab + extra

    def _window_contains(self, query: PolynomialQuery, plan: DABAssignment,
                         changed_item: Optional[str] = None) -> bool:
        """``plan.window_contains(self._values_for(query))``, incremental.

        The breach predicate per item — ``|value - ref| > secondary + 1e-12``
        on the same float64 values — is replayed exactly, but evaluated only
        when an input actually changes: ``changed_item`` names the one item
        whose cache value moved since the last check (every refresh of an
        item checks every query containing it, so flags never go stale), and
        a plan change rebuilds the query's flags from scratch.  The check
        itself is then a zero-compare.  Single-DAB plans (``secondary is
        None``, exact-equality semantics) stay on the scalar path.
        """
        if not self._vectorize or plan.secondary is None:
            return plan.window_contains(self._values_for(query))
        entry = self._window_state.get(query.name)
        if entry is not None and entry[0] is plan:
            if entry[1]:
                return False
            if changed_item is not None:
                flags = entry[3]
                old = flags.get(changed_item)
                if old is not None:
                    breached = (abs(self.cache[changed_item]
                                    - entry[4][changed_item])
                                > entry[5][changed_item])
                    if breached is not old:
                        flags[changed_item] = breached
                        entry[2] += 1 if breached else -1
            return entry[2] == 0
        variables = set(query.variables)
        missing = False
        count = 0
        flags: Dict[str, bool] = {}
        references: Dict[str, float] = {}
        widened: Dict[str, float] = {}
        for name in plan.primary:
            if name not in variables:
                continue
            reference = plan.reference_values.get(name)
            if reference is None:
                missing = True
                break
            wide = plan.secondary[name] + 1e-12
            breached = abs(self.cache[name] - reference) > wide
            flags[name] = breached
            count += breached
            references[name] = reference
            widened[name] = wide
        self._window_state[query.name] = [plan, missing, count, flags,
                                          references, widened]
        if missing:
            return False
        return count == 0

    def clear_planner_warm_starts(self) -> None:
        """A recovered source resynced: its items may have drifted
        arbitrarily far while it was down, so solver warm starts anchored
        near the pre-crash optimum are stale — drop them before the replan
        this resync triggers (plan caches stay; they are value-keyed)."""
        for planner in (self.planner, self.aao_planner):
            clear = getattr(planner, "clear_warm_starts", None)
            if clear is not None:
                clear()

    def _plan_query(self, query: PolynomialQuery) -> DABAssignment:
        """One guarded GP solve: solver failures degrade, never escape."""
        breaker = self.solver_breaker
        if breaker is not None and not breaker.allow():
            # Breaker open: no solver call at all — serve the last good
            # plan with its primary DABs conservatively shrunk (tighter
            # filters keep Condition 1 while the references go stale).
            return self._breaker_degraded_plan(query)
        try:
            plan = self.planner.plan(query, self._values_for(query))
        except GPError:
            if breaker is not None:
                breaker.record_failure()
            self.metrics.record_solver_fallback()
            previous = self.plans.get(query.name)
            if previous is not None:
                return previous
            # Cold start: no valid plan to keep — fall back to the uniform
            # single-DAB split, which needs no rate information or solver.
            from repro.filters.baselines import UniformAllocationBaseline

            return UniformAllocationBaseline().plan(query, self._values_for(query))
        if breaker is not None:
            breaker.record_success()
        return plan

    def _breaker_degraded_plan(self, query: PolynomialQuery) -> DABAssignment:
        """The last good plan, primary DABs scaled by ``breaker_shrink``.

        Shrinking *primary* bounds is the safe direction (``c >= b`` still
        holds, sources just push a little more); shrinking secondary
        would trigger extra window violations and hence more of exactly
        the solver calls the open breaker is protecting against.
        """
        previous = self.plans.get(query.name)
        if previous is None:
            from repro.filters.baselines import UniformAllocationBaseline

            return UniformAllocationBaseline().plan(query, self._values_for(query))
        cached = self._breaker_plans.get(query.name)
        if cached is not None and (previous is cached[0]
                                   or previous is cached[1]):
            return cached[1]
        shrunk = DABAssignment(
            primary={name: bound * self.breaker_shrink
                     for name, bound in previous.primary.items()},
            secondary=previous.secondary,
            reference_values=previous.reference_values,
            recompute_rate=previous.recompute_rate,
            objective=previous.objective,
        )
        self._breaker_plans[query.name] = (previous, shrunk)
        return shrunk

    def _journal_plan(self, name: str, plan: DABAssignment) -> None:
        if self.journal is None:
            return
        from repro.service.journal import plan_to_wire

        record = {"t": "plan", "q": name, "plan": plan_to_wire(plan)}
        if self.recompute_strategy != "full":
            # Full-mode journals stay byte-identical to the pre-delta
            # format; delta runs stamp the strategy so replay can
            # verify it restored under the same one.
            record["mode"] = self.recompute_strategy
        if self.bank_index_mode != "flat":
            # Same contract for the bank-index mode: flat journals stay
            # byte-identical, shared runs stamp the mode so flat- and
            # shared-mode histories can never be confused on replay.
            record["bank_index"] = self.bank_index_mode
        self.journal.append(record)

    def _recompute(self, query: PolynomialQuery) -> None:
        plan = self._plan_query(query)
        self.plans[query.name] = plan
        self.metrics.record_recomputation(query.name)
        self._journal_plan(query.name, plan)
        if self._shared_bank is not None:
            self._refresh_window_row(query.name)
        if self.recompute_hook is not None:
            self.recompute_hook()

    # -- refresh processing ------------------------------------------------------------

    def apply_refresh(self, item: str, value: float,
                      seq: Optional[int] = None) -> None:
        """An accepted refresh: the item's cached value moves to ``value``.

        ``seq`` — the accepted per-item sequence number, passed by the
        live server so the journal record carries the dedup high-water
        mark a restarted coordinator must restore.  The simulator never
        passes it (and never journals).
        """
        self.cache[item] = float(value)
        if self._vectorize:
            self._power_table.update(self._power_vector, item, self.cache[item])
        if self.journal is not None:
            record = {"t": "refresh", "item": item, "value": self.cache[item]}
            if seq is not None:
                record["seq"] = int(seq)
            self.journal.append(record)
        self.metrics.record_refresh()

    def adopt_item(self, item: str, value: float,
                   source_id: Optional[int] = None,
                   seq: Optional[int] = None) -> None:
        """Take ownership of *item* mid-flight (live resharding hand-off).

        Seeds the cache with the value transferred from the previous
        owner so a subsequent :meth:`add_query` over the item passes its
        unknown-variable check; power-table slots are registered by that
        bank edit, so a fresh item needs no vector surgery here.  ``seq``
        is the previous owner's accepted refresh high-water mark — it
        rides the journal record so a replayed shard restores the same
        dedup floor the live one was handed.
        """
        fresh = item not in self.cache
        self.cache[item] = float(value)
        if not fresh and self._vectorize:
            # Already-known items (a mirror of a cross-shard term) may
            # have live power-table slots to refresh.
            self._power_table.update(self._power_vector, item, self.cache[item])
        if source_id is not None:
            self.item_to_source[item] = int(source_id)
        self._adopted_items[item] = (int(source_id)
                                     if source_id is not None else None)
        if self.journal is not None:
            record: Dict[str, object] = {"t": "adopt", "item": item,
                                         "value": self.cache[item]}
            if source_id is not None:
                record["source"] = int(source_id)
            if seq is not None:
                record["seq"] = int(seq)
            self.journal.append(record)

    def react_to_refresh(self, item: str) -> Tuple[List[Tuple[str, float]], bool]:
        """Notify users and recompute plans after ``item`` refreshed.

        Returns ``(notifications, recomputed)``: the ``(query name, new
        value)`` pairs whose result moved beyond its QAB since the user
        last saw it, and whether any plan was recomputed (in which case the
        adapter should ship :meth:`changed_bound_updates`)."""
        if self._shared_bank is not None:
            return self._react_shared(item)
        notifications: List[Tuple[str, float]] = []
        affected = self.item_index.get(item, [])
        recomputed = False
        if self._vectorize and affected:
            # User notification, batched: one sub-bank evaluation gives
            # every affected query's value (the cache cannot change again
            # within this event), and one masked compare finds the queries
            # whose result moved beyond the QAB since the user last saw it.
            # Notifications draw no randomness, so hoisting them ahead of
            # the recompute loop leaves the event-stream state untouched.
            idx = self._affected_idx[item]
            sub = self._item_banks[item].values_vector(self._power_vector)
            moved = np.abs(sub - self._last_user_arr[idx]) > self._qab_arr[idx]
            if moved.any():
                for pos in np.nonzero(moved)[0].tolist():
                    bank_pos = int(idx[pos])
                    value = float(sub[pos])
                    name = self.queries[bank_pos].name
                    self.last_user_values[name] = value
                    self._last_user_arr[bank_pos] = value
                    self.metrics.record_user_notification()
                    notifications.append((name, value))
            if self.mode is RecomputeMode.EVERY_REFRESH:
                for query in affected:
                    self._recompute(query)
                recomputed = True
            else:
                # The window check, inlined from ``_window_contains``'s fast
                # path: only ``item`` moved, so only its breach flag can
                # have changed since the last check of the same plan.
                plans = self.plans
                wstate = self._window_state
                cache_value = self.cache[item]
                for query in affected:
                    plan = plans.get(query.name)
                    if plan is not None:
                        entry = wstate.get(query.name)
                        if entry is not None and entry[0] is plan:
                            if entry[1]:
                                contains = False
                            else:
                                flags = entry[3]
                                old = flags.get(item)
                                if old is not None:
                                    breached = (abs(cache_value
                                                    - entry[4][item])
                                                > entry[5][item])
                                    if breached is not old:
                                        flags[item] = breached
                                        entry[2] += 1 if breached else -1
                                contains = entry[2] == 0
                        else:
                            contains = self._window_contains(query, plan,
                                                             item)
                        if contains:
                            continue
                    self._recompute(query)
                    recomputed = True
        else:
            for query in affected:
                # User notification: has the result moved beyond the QAB
                # since the last value the user saw?
                value = self.query_value(query)
                if abs(value - self.last_user_values[query.name]) > query.qab:
                    self.last_user_values[query.name] = value
                    self.metrics.record_user_notification()
                    notifications.append((query.name, value))

                if self.mode is RecomputeMode.EVERY_REFRESH:
                    self._recompute(query)
                    recomputed = True
                else:
                    plan = self.plans.get(query.name)
                    if plan is None or not self._window_contains(query, plan):
                        self._recompute(query)
                        recomputed = True
        if notifications and self.journal is not None:
            # last_user_values gates every future notification, so the
            # values the user saw are part of the recovery state.
            self.journal.append({"t": "notify",
                                 "values": dict(notifications)})
        return notifications, recomputed

    def _react_shared(self, item: str) -> Tuple[List[Tuple[str, float]], bool]:
        """Shared-index reaction: slack-screened notifications plus
        per-template window checks (DESIGN.md §13).

        The notification *decisions* match the flat path's exact per-tick
        evaluation (screened-out members provably cannot have crossed
        their QAB); the values themselves differ from the flat sums only
        in float association (``W @ P``).  Breach/recompute decisions are
        driven purely by plans and cached item values, so they agree with
        the flat path exactly.
        """
        shared = self._shared_bank
        notifications: List[Tuple[str, float]] = []
        recomputed = False
        moved_pos, moved_val = shared.refresh_movers(
            item, self._power_vector, self._last_user_arr, self._qab_arr)
        for position, value in zip(moved_pos, moved_val):
            name = self.queries[position].name
            self.last_user_values[name] = value
            self._last_user_arr[position] = value
            self.metrics.record_user_notification()
            notifications.append((name, value))
        if self.mode is RecomputeMode.EVERY_REFRESH:
            for query in self.item_index.get(item, []):
                self._recompute(query)
                recomputed = True
        else:
            cache_value = self.cache[item]
            for tid in shared.templates_of_item(item):
                window = self._window_for(tid)
                for row in window.update_item(item, cache_value).tolist():
                    self._recompute(self.queries[int(window.positions[row])])
                    recomputed = True
                fallback = window.fallback_rows()
                for row in fallback.tolist():
                    query = self.queries[int(window.positions[row])]
                    plan = self.plans.get(query.name)
                    if plan is None or not self._window_contains(query, plan,
                                                                 item):
                        self._recompute(query)
                        recomputed = True
        if notifications and self.journal is not None:
            self.journal.append({"t": "notify",
                                 "values": dict(notifications)})
        return notifications, recomputed

    def _window_for(self, tid: int) -> TemplateWindowState:
        """The template's window matrices, rebuilt when membership moved."""
        shared = self._shared_bank
        window = self._tpl_window.get(tid)
        version = shared.template_version(tid)
        if window is None or window.version != version:
            window = TemplateWindowState(shared.template_items(tid),
                                         shared.template_positions(tid),
                                         version)
            for row, name in enumerate(shared.template_names(tid)):
                self._set_window_row(window, row, name)
            self._tpl_window[tid] = window
        return window

    def _set_window_row(self, window: TemplateWindowState, row: int,
                        name: str) -> None:
        """Adopt ``name``'s current plan into its window-matrix row.

        Mirrors ``_window_contains``'s plan interpretation: single-DAB
        plans, unplanned queries and plans with missing references all
        become fallback rows handled by the scalar predicate.
        """
        plan = self.plans.get(name)
        if plan is None or plan.secondary is None:
            window.set_fallback(row)
            return
        query = self.queries[self._bank_index[name]]
        variables = set(query.variables)
        references: Dict[str, float] = {}
        widened: Dict[str, float] = {}
        for item in plan.primary:
            if item not in variables:
                continue
            reference = plan.reference_values.get(item)
            if reference is None:
                window.set_fallback(row)
                return
            references[item] = reference
            widened[item] = plan.secondary[item] + 1e-12
        window.set_row(row, references, widened, self.cache)

    def _refresh_window_row(self, name: str) -> None:
        shared = self._shared_bank
        tid = shared.template_of(name)
        window = self._tpl_window.get(tid)
        if window is not None and window.version == shared.template_version(tid):
            self._set_window_row(window, shared.member_row(name), name)

    # -- dynamic membership (live QUERY_SUB path) --------------------------------------

    def add_query(self, query: PolynomialQuery, plan: bool = True) -> int:
        """Register a query at runtime; returns its bank position.

        Shared-index mode appends in O(template): the structure index,
        power vector and notification arrays all grow incrementally.
        Flat mode recompiles the vectorized state — the O(bank) work the
        shared index exists to avoid, counted in ``bank_rebuilds``.
        ``plan=False`` skips the solve (journal replay installs the
        journaled plan instead).
        """
        name = query.name
        if name in self.query_names:
            raise SimulationError(f"query {name!r} already registered")
        unknown = [v for v in query.variables if v not in self.cache]
        if unknown:
            raise SimulationError(
                f"query {name!r} references unknown items: {unknown}")
        position = len(self.queries)
        self.queries.append(query)
        self.query_names.add(name)
        self.dynamic_names.add(name)
        for item in query.variables:
            self.item_index.setdefault(item, []).append(query)
        if self._vectorize:
            if self._shared_bank is not None:
                self._compiled[name] = CompiledPolynomial(
                    query, self._power_table)
                self._bank_index[name] = position
                tid = self._shared_bank.add_query(query, position)
                self._sync_power_vector()
                self._ensure_query_capacity(position + 1)
                self._qab_arr[position] = query.qab
                self._tpl_window.pop(tid, None)
            else:
                self.bank_rebuilds += 1
                self._build_vectorized_state()
        if self.journal is not None:
            from repro.service.protocol import query_to_wire

            self.journal.append({"t": "qadd", "query": query_to_wire(query)})
        if plan:
            assignment = self._plan_query(query)
            self.plans[name] = assignment
            self._journal_plan(name, assignment)
        value = self.query_value(query)
        self.last_user_values[name] = value
        if self._last_user_arr is not None:
            self._last_user_arr[position] = value
        return position

    def remove_query(self, name: str) -> None:
        """Drop a dynamically-registered query (swap-remove; O(template)
        in shared mode, an O(bank) recompile in flat mode)."""
        if name not in self.query_names:
            raise SimulationError(f"unknown query {name!r}")
        if len(self.queries) == 1:
            raise SimulationError("a coordinator needs at least one query")
        if self._vectorize:
            position = self._bank_index[name]
        else:
            position = next(i for i, q in enumerate(self.queries)
                            if q.name == name)
        query = self.queries[position]
        last = len(self.queries) - 1
        moved = self.queries[last]
        self.queries[position] = moved
        self.queries.pop()
        self.query_names.discard(name)
        if name not in self.dynamic_names:
            # Removing a static query must survive a snapshot restore,
            # which rebuilds the original static bank.
            self._removed_queries.add(name)
        self.dynamic_names.discard(name)
        for item in query.variables:
            bucket = self.item_index.get(item)
            if bucket is not None:
                bucket.remove(query)
                if not bucket:
                    del self.item_index[item]
        self.plans.pop(name, None)
        self.last_user_values.pop(name, None)
        self._window_state.pop(name, None)
        self._breaker_plans.pop(name, None)
        # The name may be re-registered later with a different shape or
        # budget (live resharding re-adds a re-decomposed sub-query under
        # the same name) — stale per-name planner caches (compiled
        # templates, warm starts, value-keyed plans) must not survive.
        forget = getattr(self.planner, "forget_query", None)
        if forget is not None:
            forget(name)
        if self._vectorize:
            del self._bank_index[name]
            self._compiled.pop(name, None)
            if self._shared_bank is not None:
                tid = self._shared_bank.template_of(name)
                self._shared_bank.remove_query(name)
                self._tpl_window.pop(tid, None)
                if position != last:
                    self._bank_index[moved.name] = position
                    self._shared_bank.set_position(moved.name, position)
                    self._tpl_window.pop(
                        self._shared_bank.template_of(moved.name), None)
                    self._qab_arr[position] = self._qab_arr[last]
                    self._last_user_arr[position] = self._last_user_arr[last]
            else:
                self.bank_rebuilds += 1
                self._build_vectorized_state()
        if self.journal is not None:
            self.journal.append({"t": "qdel", "name": name})

    # -- plan fanout -------------------------------------------------------------------

    def changed_bound_updates(self) -> Dict[int, BoundUpdate]:
        """Diff the merged primary DABs against what each source last saw.

        Bumps the per-item epoch for every materially-changed bound and
        returns ``{source_id: (bounds, epochs)}`` — one entry per source
        that must be told (each counted as one DAB-change message, the
        overhead μ approximates)."""
        merged = merge_primary(self.plans.values())
        changed_by_source: Dict[int, Dict[str, float]] = {}
        changed_bounds: Dict[str, float] = {}
        for name, bound in merged.items():
            previous = self._last_sent_bounds.get(name)
            if previous is not None and abs(bound - previous) <= _DAB_CHANGE_REL_TOL * previous:
                continue
            self._last_sent_bounds[name] = bound
            self.epochs[name] = self.epochs.get(name, 0) + 1
            changed_bounds[name] = bound
            source_id = self.item_to_source.get(name)
            if source_id is not None:
                changed_by_source.setdefault(source_id, {})[name] = bound
        if changed_bounds and self.journal is not None:
            self.journal.append({
                "t": "bounds", "bounds": changed_bounds,
                "epochs": {name: self.epochs[name] for name in changed_bounds},
            })
        updates: Dict[int, BoundUpdate] = {}
        for source_id, bounds in changed_by_source.items():
            epochs = {name: self.epochs[name] for name in bounds}
            self.metrics.record_dab_change_messages(1)
            updates[source_id] = (bounds, epochs)
        return updates

    def current_bounds_for(self, source_id: int) -> BoundUpdate:
        """The latest sent bounds (and epochs) for one source — what a
        newly-connected or resyncing source must be programmed with."""
        bounds = {name: bound for name, bound in self._last_sent_bounds.items()
                  if self.item_to_source.get(name) == source_id}
        epochs = {name: self.epochs.get(name, 0) for name in bounds}
        return bounds, epochs

    # -- AAO periodic ------------------------------------------------------------------

    def aao_replan(self) -> bool:
        """Full joint recomputation on the AAO-T schedule.

        One AAO solve is counted as a single recomputation (it is one
        coordinated DAB change, whose larger fanout is folded into μ, as in
        the paper's accounting for Figure 7).  Returns False when the solver
        failed and the previous joint plan stays in force."""
        try:
            multi = self.aao_planner.plan_all(self.queries, self.cache)
        except GPError:
            # Keep serving on the previous joint plan; try again next period.
            self.metrics.record_solver_fallback()
            return False
        self.plans = dict(multi.per_query)
        self._tpl_window.clear()
        self.metrics.record_recomputation("__aao__")
        if self.journal is not None:
            from repro.service.journal import plan_to_wire

            self.journal.append({
                "t": "aao",
                "plans": {name: plan_to_wire(plan)
                          for name, plan in sorted(self.plans.items())},
            })
        return True

    # -- durability (snapshot / replay) ------------------------------------------------

    def recovery_state(self) -> Dict[str, object]:
        """Everything a restarted coordinator must restore to be
        indistinguishable from this one, as a JSON-safe dict: the item
        cache, per-item DAB epochs, the bounds each source last saw, the
        values each user last saw, and every current plan (which is also
        the breaker's last-good plan set)."""
        from repro.service.journal import plan_to_wire

        state: Dict[str, object] = {
            "cache": dict(self.cache),
            "epochs": dict(self.epochs),
            "last_sent_bounds": dict(self._last_sent_bounds),
            "last_user_values": dict(self.last_user_values),
            "plans": {name: plan_to_wire(plan)
                      for name, plan in sorted(self.plans.items())},
        }
        if self.dynamic_names:
            # Only when present — snapshots of a static bank stay
            # byte-identical to the pre-index format.
            from repro.service.protocol import query_to_wire

            state["dynamic_queries"] = [
                query_to_wire(query) for query in
                sorted((q for q in self.queries
                        if q.name in self.dynamic_names),
                       key=lambda q: q.name)]
        if self._adopted_items:
            # Only when a reshard handed this shard new items — static
            # clusters' snapshots stay byte-identical to the old format.
            state["adopted_items"] = {
                item: self._adopted_items[item]
                for item in sorted(self._adopted_items)}
        if self._removed_queries:
            # Static queries removed at runtime (live resharding): the
            # restore path rebuilds the original bank and must drop
            # these again, or a re-added same-named dynamic sub-query
            # is shadowed by its stale pre-migration shape.
            state["removed_queries"] = sorted(self._removed_queries)
        return state

    def restore_recovery_state(self, state: Mapping[str, object]) -> None:
        """Adopt a :meth:`recovery_state` snapshot wholesale."""
        from repro.service.journal import plan_from_wire
        from repro.service.protocol import query_from_wire

        # Adopted items first: dynamic queries registered after a
        # reshard may read migrated items this core was not built with,
        # and add_query refuses unknown variables.  The placeholder 0.0
        # is immediately overwritten by the cache loop below.
        for item, source in (state.get("adopted_items") or {}).items():
            if item not in self.cache:
                self.adopt_item(item, 0.0, source_id=source)
            elif source is not None:
                self.item_to_source[item] = int(source)
        # Dynamic queries next: the plans/user values below may belong
        # to them.  (No journal is attached yet on the restore path, so
        # these re-registrations are not re-journaled.)  Non-colliding
        # names go first so the static removals below can never empty
        # the bank; a dynamic query whose name collides with a static
        # one is its post-migration replacement and is re-added right
        # after the stale static version is dropped.
        dynamic = [query_from_wire(wire)
                   for wire in state.get("dynamic_queries", ())]
        replacements = {q.name: q for q in dynamic}
        for query in dynamic:
            if query.name not in self.query_names:
                self.add_query(query, plan=False)
        for name in state.get("removed_queries", ()):
            name = str(name)
            # Keep the tombstone so the *next* snapshot cut from this
            # core records the removal too.
            self._removed_queries.add(name)
            if name in self.query_names and name not in self.dynamic_names:
                self.remove_query(name)
                replacement = replacements.get(name)
                if replacement is not None:
                    self.add_query(replacement, plan=False)
        for item, value in state["cache"].items():
            self.restore_cache_value(item, float(value))
        self.epochs = {name: int(epoch)
                       for name, epoch in state["epochs"].items()}
        self._last_sent_bounds = {name: float(bound) for name, bound
                                  in state["last_sent_bounds"].items()}
        for name, value in state["last_user_values"].items():
            self.restore_user_value(name, float(value))
        self.plans = {name: plan_from_wire(wire)
                      for name, wire in state["plans"].items()}
        # Identity-keyed caches are meaningless across a restart.
        self._window_state.clear()
        self._breaker_plans.clear()
        self._tpl_window.clear()
        if self._shared_bank is not None:
            self._shared_bank.invalidate()

    def restore_cache_value(self, item: str, value: float) -> None:
        """Set one cached value during replay — no metrics, no journal."""
        if item not in self.cache:
            return
        self.cache[item] = float(value)
        if self._vectorize:
            self._power_table.update(self._power_vector, item, self.cache[item])

    def restore_user_value(self, name: str, value: float) -> None:
        """Set one last-user-visible value during replay."""
        if name not in self.query_names:
            return
        self.last_user_values[name] = float(value)
        if self._last_user_arr is not None:
            self._last_user_arr[self._bank_index[name]] = float(value)
        if self._shared_bank is not None:
            # Screening thresholds are anchored on last-user values; a
            # value restored behind the bank's back must drop them.
            self._shared_bank.invalidate()
