"""Data items and their registry.

A :class:`DataItem` is one dynamic quantity served by a source — a stock
price, an exchange rate, a sensor coordinate.  The :class:`ItemRegistry`
keeps the item population for a deployment in a stable order, which the
workload generator, the simulator and the experiments all share.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.exceptions import InvalidQueryError

#: Item names must be usable as GP variable-name fragments.
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def validate_item_name(name: str) -> str:
    """Validate and return an item name.

    Raises :class:`~repro.exceptions.InvalidQueryError` for names that could
    not serve as GP variable fragments (the DAB variables are derived from
    them as ``b__<name>`` / ``c__<name>``).
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise InvalidQueryError(
            f"item name must be an identifier ([A-Za-z_][A-Za-z0-9_]*), got {name!r}"
        )
    return name


@dataclass(frozen=True)
class DataItem:
    """One dynamic data item.

    Attributes
    ----------
    name:
        Identifier, unique within a registry.
    description:
        Optional human-readable description ("ACME stock price, NYSE").
    """

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        validate_item_name(self.name)

    def __str__(self) -> str:
        return self.name


class ItemRegistry:
    """An ordered, name-unique collection of :class:`DataItem` objects."""

    def __init__(self, items: Iterable[DataItem] = ()):
        self._items: Dict[str, DataItem] = {}
        for item in items:
            self.register(item)

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "ItemRegistry":
        return cls(DataItem(name) for name in names)

    @classmethod
    def numbered(cls, count: int, prefix: str = "x") -> "ItemRegistry":
        """``count`` items named ``<prefix>0 .. <prefix>{count-1}`` — the
        paper's "100 data items" population."""
        if count < 1:
            raise InvalidQueryError(f"item count must be >= 1, got {count}")
        return cls.from_names(f"{prefix}{i}" for i in range(count))

    def register(self, item: DataItem) -> DataItem:
        if item.name in self._items:
            raise InvalidQueryError(f"duplicate item name {item.name!r}")
        self._items[item.name] = item
        return item

    def get(self, name: str) -> DataItem:
        try:
            return self._items[name]
        except KeyError:
            raise KeyError(f"unknown data item {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items.values())

    @property
    def names(self) -> List[str]:
        return list(self._items)

    def subset(self, names: Iterable[str]) -> "ItemRegistry":
        return ItemRegistry(self.get(name) for name in names)

    def __repr__(self) -> str:
        return f"ItemRegistry({len(self)} items)"
