"""Worst-case query deviation and its posynomial expansion.

This module is the mathematical heart of the reproduction: it turns the
paper's QAB conditions into GP-ready posynomials.

For one positive term ``w * prod_i x_i^{p_i}`` at current values ``V_i``,
the worst-case increase when each item may move by ``d_i`` is obtained with
every item moving *up* simultaneously (all quantities positive)::

    w * ( prod_i (V_i + d_i)^{p_i}  -  prod_i V_i^{p_i} )

Expanding each factor with the binomial theorem and multiplying out, every
surviving term (the pure-``V`` constant cancels) contains at least one
``d_i`` and has a positive coefficient — a *posynomial* in the ``d_i``.

* **Single-DAB condition (paper Eq. 1, generalised):** substitute
  ``d_i = b_i`` and require the sum over query terms ``<= B``.
* **Dual-DAB condition (paper Eq. 2, generalised):** the primary DABs must
  stay valid anywhere inside the secondary window, whose worst point is
  ``V_i + c_i``; substitute base value ``V_i + c_i`` and ``d_i = b_i``:

      sum_t w_t * ( prod (V_i + c_i + b_i)^{p_i} - prod (V_i + c_i)^{p_i} ) <= B

  which is again a posynomial in ``(b, c)`` jointly.

The paper derives these for degree-2 products (``x*y``); here the expansion
handles arbitrary positive integer exponents via the multinomial theorem.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import InvalidQueryError
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial
from repro.queries.terms import QueryTerm

#: Prefixes for the GP variables derived from item names.  Double
#: underscores keep them out of the item-name namespace.
_PRIMARY_PREFIX = "b__"
_SECONDARY_PREFIX = "c__"


def primary_variable(item: str) -> str:
    """GP variable name of the primary DAB of ``item``."""
    return _PRIMARY_PREFIX + item


def secondary_variable(item: str) -> str:
    """GP variable name of the secondary DAB of ``item``."""
    return _SECONDARY_PREFIX + item


def item_of_variable(variable: str) -> str:
    """Inverse of the two functions above."""
    for prefix in (_PRIMARY_PREFIX, _SECONDARY_PREFIX):
        if variable.startswith(prefix):
            return variable[len(prefix):]
    raise ValueError(f"{variable!r} is not a DAB variable")


def _require_positive_value(name: str, values: Mapping[str, float]) -> float:
    try:
        value = float(values[name])
    except KeyError:
        raise KeyError(f"no current value supplied for data item {name!r}") from None
    if not (value > 0.0) or math.isinf(value):
        raise InvalidQueryError(
            f"the GP formulation needs strictly positive item values; {name!r} = {value!r}. "
            "(Prices/rates/coordinates in the paper's workloads are positive; shift or "
            "re-origin the data if needed.)"
        )
    return value


def _factor_expansion(value: float, power: int, b_var: str,
                      c_var: Optional[str]) -> Posynomial:
    """Binomial/trinomial expansion of one factor.

    Without a secondary variable: ``(V + b)^p = sum_k C(p,k) V^{p-k} b^k``.
    With one: ``(V + c + b)^p = sum_{j+k<=p} p!/(j!k!(p-j-k)!) V^{p-j-k} c^j b^k``.
    All coefficients are positive because ``V > 0``.
    """
    monomials: List[Monomial] = []
    if c_var is None:
        for k in range(power + 1):
            coefficient = math.comb(power, k) * value ** (power - k)
            monomials.append(Monomial(coefficient, {b_var: k} if k else {}))
    else:
        for j in range(power + 1):
            for k in range(power - j + 1):
                coefficient = (
                    math.comb(power, j) * math.comb(power - j, k)
                    * value ** (power - j - k)
                )
                exponents: Dict[str, int] = {}
                if j:
                    exponents[c_var] = j
                if k:
                    exponents[b_var] = k
                monomials.append(Monomial(coefficient, exponents))
    return Posynomial(monomials)


def _has_primary_variable(monomial: Monomial) -> bool:
    return any(name.startswith(_PRIMARY_PREFIX) for name in monomial.variables)


def deviation_posynomial(
    terms: Iterable[QueryTerm],
    values: Mapping[str, float],
    include_secondary: bool = False,
) -> Posynomial:
    """The worst-case query deviation as a posynomial in the DAB variables.

    Parameters
    ----------
    terms:
        Query terms; weights enter through their absolute value (each term's
        worst case is independent, which is exact for PPQs and the safe
        triangle bound for mixed signs).
    values:
        Current item values ``V_i`` (strictly positive).
    include_secondary:
        When true, produce the dual-DAB form in ``(b__*, c__*)``; otherwise
        the single-DAB form in ``b__*`` only.

    Returns
    -------
    Posynomial
        Every term contains at least one primary-DAB variable; the constant
        (pure ``V``/pure ``c``) part is already subtracted out.
    """
    collected: List[Monomial] = []
    for term in terms:
        product = Posynomial([Monomial.constant(abs(term.weight))])
        for name, power in term.key:
            value = _require_positive_value(name, values)
            factor = _factor_expansion(
                value, power, primary_variable(name),
                secondary_variable(name) if include_secondary else None,
            )
            product = product * factor
        collected.extend(m for m in product.terms if _has_primary_variable(m))
    if not collected:
        raise InvalidQueryError("deviation expansion produced no DAB-bearing terms")
    return Posynomial(collected)


def dual_dab_condition(terms: Iterable[QueryTerm], values: Mapping[str, float],
                       qab: float) -> Posynomial:
    """Paper Eq. 2 generalised: the posynomial ``g(b, c)`` with the QAB
    condition ``g <= qab``, normalised to ``g/qab`` (ready for ``<= 1``)."""
    if not (qab > 0.0):
        raise InvalidQueryError(f"QAB must be positive, got {qab!r}")
    return deviation_posynomial(terms, values, include_secondary=True) / qab


# ---------------------------------------------------------------------------
# Numeric worst-case deviations (used by validity predicates and tests)
# ---------------------------------------------------------------------------

def max_term_deviation(term: QueryTerm, values: Mapping[str, float],
                       bounds: Mapping[str, float]) -> float:
    """``|w| * (prod (V_i + d_i)^{p_i} - prod V_i^{p_i})`` — the exact
    worst-case change of one term when each item may move by ``d_i >= 0``.

    Items absent from ``bounds`` are treated as exact (``d_i = 0``).
    """
    base = 1.0
    shifted = 1.0
    for name, power in term.key:
        value = _require_positive_value(name, values)
        bound = float(bounds.get(name, 0.0))
        if bound < 0.0:
            raise InvalidQueryError(f"deviation bounds must be >= 0; {name!r} = {bound!r}")
        base *= value ** power
        shifted *= (value + bound) ** power
    return abs(term.weight) * (shifted - base)


def max_query_deviation(terms: Iterable[QueryTerm], values: Mapping[str, float],
                        bounds: Mapping[str, float]) -> float:
    """Worst-case absolute query deviation under per-item bounds.

    Exact for PPQs (all items move up together); for mixed-sign queries it
    is the triangle-inequality bound, which is attained when the positive
    and negative halves share no data items (the paper's "independent"
    case) and conservative otherwise.
    """
    return sum(max_term_deviation(term, values, bounds) for term in terms)


def assignment_feasible_for_query(
    terms: Iterable[QueryTerm],
    values: Mapping[str, float],
    bounds: Mapping[str, float],
    qab: float,
    tol: float = 1e-9,
) -> bool:
    """Condition 1 of the problem statement: do these DABs guarantee the
    QAB at the current values?"""
    return max_query_deviation(terms, values, bounds) <= qab * (1.0 + tol)
