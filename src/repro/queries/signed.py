"""Signed expansion of the mixed-sign dual-DAB condition (paper Eq. 4).

For a general query ``Q = P1 - P2`` with dual windows, the exact
necessary-and-sufficient condition bounds the worst joint movement: the
positive half's items at the *top* of their windows moving up, the
negative half's at the *bottom* moving down::

    sum_{w>0} w [ prod(V+c+b)^p - prod(V+c)^p ]
  + sum_{w<0} |w| [ prod(V-c)^p - prod(V-c-b)^p ]   <=   B

The first sum is the familiar posynomial; the second expands into terms of
*both* signs (the ``- b_u b_v`` of the paper's Eq. 4).  This module
expands the whole left side into a signed pair ``(pos, neg)`` of
posynomials with ``LHS = pos - neg``, which the signomial planner turns
into the GP-approximable form ``pos <= B + neg``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import InvalidQueryError
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial
from repro.queries.deviation import (
    _require_positive_value,
    deviation_posynomial,
    primary_variable,
    secondary_variable,
)
from repro.queries.terms import QueryTerm

#: signed polynomial representation: exponent-key -> coefficient (any sign)
_SignedPoly = Dict[Tuple[Tuple[str, float], ...], float]

_COEFF_EPS = 1e-15


def _signed_factor_down(value: float, power: int, b_var: str,
                        c_var: str) -> _SignedPoly:
    """Expansion of ``(V - c - b)^p`` as a signed polynomial in (c, b)."""
    out: _SignedPoly = {}
    for j in range(power + 1):
        for k in range(power - j + 1):
            coefficient = (
                math.comb(power, j) * math.comb(power - j, k)
                * value ** (power - j - k) * (-1.0) ** (j + k)
            )
            exponents = []
            if j:
                exponents.append((c_var, float(j)))
            if k:
                exponents.append((b_var, float(k)))
            key = tuple(sorted(exponents))
            out[key] = out.get(key, 0.0) + coefficient
    return out


def _signed_mul(a: _SignedPoly, b: _SignedPoly) -> _SignedPoly:
    out: _SignedPoly = {}
    for key_a, coeff_a in a.items():
        for key_b, coeff_b in b.items():
            merged: Dict[str, float] = dict(key_a)
            for name, exp in key_b:
                merged[name] = merged.get(name, 0.0) + exp
            key = tuple(sorted(merged.items()))
            out[key] = out.get(key, 0.0) + coeff_a * coeff_b
    return out


def _signed_scale(a: _SignedPoly, factor: float) -> _SignedPoly:
    return {key: coeff * factor for key, coeff in a.items()}


def _signed_add_into(target: _SignedPoly, source: _SignedPoly) -> None:
    for key, coeff in source.items():
        target[key] = target.get(key, 0.0) + coeff


def _has_primary(key: Tuple[Tuple[str, float], ...]) -> bool:
    return any(name.startswith("b__") for name, _exp in key)


def _split_signed(signed: _SignedPoly) -> Tuple[Optional[Posynomial], Optional[Posynomial]]:
    positive: List[Monomial] = []
    negative: List[Monomial] = []
    for key, coeff in signed.items():
        if abs(coeff) <= _COEFF_EPS:
            continue
        monomial = Monomial(abs(coeff), dict(key))
        (positive if coeff > 0 else negative).append(monomial)
    pos = Posynomial(positive) if positive else None
    neg = Posynomial(negative) if negative else None
    return pos, neg


def mixed_dual_condition(
    terms: Iterable[QueryTerm],
    values: Mapping[str, float],
    direction: str = "query_up",
) -> Tuple[Posynomial, Optional[Posynomial]]:
    """Expand one direction of the mixed dual condition into ``(pos, neg)``
    with ``LHS = pos - neg`` (``neg`` is ``None`` when nothing cancels).

    ``direction="query_up"`` is the paper's Eq. 4 (positive half at the top
    of its windows moving up, negative half at the bottom moving down —
    the query *increases* most).  ``direction="query_down"`` is the mirror
    case (positive half down, negative half up — the query *decreases*
    most), which Eq. 4 does **not** dominate when the negative half is
    heavy; a sound planner must enforce both.

    Every kept term contains at least one primary-DAB variable: the
    c-only parts cancel exactly between ``prod(V∓c)^p`` and the b-free
    slice of the moved product.
    """
    if direction not in ("query_up", "query_down"):
        raise InvalidQueryError(
            f"direction must be 'query_up' or 'query_down', got {direction!r}")
    term_list = list(terms)
    up_terms = [t for t in term_list
                if t.is_positive == (direction == "query_up")]
    down_terms = [t for t in term_list
                  if t.is_positive != (direction == "query_up")]

    signed: _SignedPoly = {}
    if up_terms:
        ppq_part = deviation_posynomial([t.abs() for t in up_terms], values,
                                        include_secondary=True)
        for monomial in ppq_part.terms:
            key = tuple(sorted(monomial.exponents.items()))
            signed[key] = signed.get(key, 0.0) + monomial.coefficient

    for term in down_terms:
        down: _SignedPoly = {(): 1.0}
        for name, power in term.key:
            value = _require_positive_value(name, values)
            down = _signed_mul(down, _signed_factor_down(
                value, power, primary_variable(name), secondary_variable(name)))
        # decrease = prod(V-c)^p - prod(V-c-b)^p: the b-free slice of `down`
        # is exactly prod(V-c)^p, so keep only b-bearing terms, negated.
        contribution: _SignedPoly = {
            key: -coeff for key, coeff in down.items() if _has_primary(key)
        }
        _signed_add_into(signed, _signed_scale(contribution, abs(term.weight)))

    pos, neg = _split_signed(signed)
    if pos is None:
        raise InvalidQueryError(
            "the mixed dual condition has no positive part; the query is "
            "degenerate (no primary-DAB-bearing terms)"
        )
    return pos, neg


def _directional_deviation(
    terms: Iterable[QueryTerm],
    values: Mapping[str, float],
    primary: Mapping[str, float],
    secondary: Mapping[str, float],
    direction: str,
) -> float:
    total = 0.0
    for term in terms:
        moves_up = term.is_positive == (direction == "query_up")
        edge = 1.0
        moved = 1.0
        for name, power in term.key:
            value = _require_positive_value(name, values)
            b = float(primary[name])
            c = float(secondary[name])
            if moves_up:
                edge *= (value + c) ** power
                moved *= (value + c + b) ** power
            else:
                low = value - c
                lower = value - c - b
                # allow solver-tolerance overshoot of the b+c <= V constraint
                if lower < -1e-5 * value:
                    raise InvalidQueryError(
                        f"window+filter exceed the value for {name!r}: "
                        f"V={value}, c={c}, b={b}"
                    )
                edge *= max(low, 0.0) ** power
                moved *= max(lower, 0.0) ** power
        if moves_up:
            total += abs(term.weight) * (moved - edge)
        else:
            total += abs(term.weight) * (edge - moved)
    return total


def mixed_worst_deviation(
    terms: Iterable[QueryTerm],
    values: Mapping[str, float],
    primary: Mapping[str, float],
    secondary: Mapping[str, float],
    direction: str = "both",
) -> float:
    """Numeric worst-case query movement with dual windows (unexpanded) —
    the oracle the expansion and the signomial planner are validated
    against.

    ``direction="both"`` (the sound default) returns the maximum of the
    query-up case (the paper's Eq. 4) and the query-down mirror case.
    Requires ``V - c - b >= 0`` for every down-moving item (enforced by
    the planner's window constraints).
    """
    term_list = list(terms)
    if direction == "both":
        return max(
            _directional_deviation(term_list, values, primary, secondary,
                                   "query_up"),
            _directional_deviation(term_list, values, primary, secondary,
                                   "query_down"),
        )
    if direction not in ("query_up", "query_down"):
        raise InvalidQueryError(
            f"direction must be 'both', 'query_up' or 'query_down', "
            f"got {direction!r}")
    return _directional_deviation(term_list, values, primary, secondary,
                                  direction)
