"""A small text format for polynomial queries.

Grammar (whitespace-insensitive)::

    query   := expr [":" NUMBER]
    expr    := ["+"|"-"] term (("+"|"-") term)*
    term    := primary (["*"] primary)*
    primary := NUMBER | IDENT [("^" | "**") INT]

Examples
--------
``"x*y : 5"``                     — the paper's running example (Fig. 2)
``"3 x*y - 2 u*v : 5"``           — a weighted mixed-sign query
``"x^2 + y^2 : 0.5"``             — the oil-spill area building block
``"0.5 x0*x1 + 2 x2^2"``          — QAB omitted (supply it separately)
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.exceptions import QueryParseError
from repro.queries.polynomial import PolynomialQuery
from repro.queries.terms import QueryTerm

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d*|\.\d+|\d+(?:[eE][-+]?\d+)?|\d*\.\d+[eE][-+]?\d+)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<power>\*\*|\^)
    | (?P<star>\*)
    | (?P<plus>\+)
    | (?P<minus>-)
    | (?P<colon>:)
    | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r}, {self.position})"


def _tokenise(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryParseError(text, position, f"unexpected character {text[position]!r}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("end", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenise(text)
        self.index = 0

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        if self.current.kind != kind:
            raise QueryParseError(
                self.text, self.current.position,
                f"expected {kind}, found {self.current.text or 'end of input'!r}",
            )
        return self.advance()

    # query := expr [':' NUMBER]
    def parse_query(self) -> Tuple[List[QueryTerm], Optional[float]]:
        terms = self.parse_expr()
        qab: Optional[float] = None
        if self.current.kind == "colon":
            self.advance()
            qab = float(self.expect("number").text)
        self.expect("end")
        return terms, qab

    # expr := ['+'|'-'] term (('+'|'-') term)*
    def parse_expr(self) -> List[QueryTerm]:
        terms: List[QueryTerm] = []
        sign = 1.0
        if self.current.kind in ("plus", "minus"):
            sign = -1.0 if self.advance().kind == "minus" else 1.0
        terms.append(self.parse_term(sign))
        while self.current.kind in ("plus", "minus"):
            sign = -1.0 if self.advance().kind == "minus" else 1.0
            terms.append(self.parse_term(sign))
        return terms

    # term := primary (['*'] primary)*
    def parse_term(self, sign: float) -> QueryTerm:
        weight = sign
        exponents: Dict[str, int] = {}
        saw_factor = False
        while True:
            if self.current.kind == "star":
                self.advance()
                continue
            if self.current.kind == "number":
                weight *= float(self.advance().text)
                saw_factor = True
                continue
            if self.current.kind == "ident":
                name = self.advance().text
                exponent = 1
                if self.current.kind == "power":
                    self.advance()
                    exp_token = self.expect("number")
                    exp_value = float(exp_token.text)
                    if not exp_value.is_integer():
                        raise QueryParseError(
                            self.text, exp_token.position,
                            f"exponents must be integers, got {exp_token.text}",
                        )
                    exponent = int(exp_value)
                exponents[name] = exponents.get(name, 0) + exponent
                saw_factor = True
                continue
            break
        if not saw_factor:
            raise QueryParseError(self.text, self.current.position, "expected a term")
        if not exponents:
            raise QueryParseError(
                self.text, self.current.position,
                "constant terms are not allowed (a term must reference a data item)",
            )
        return QueryTerm(weight, exponents)


def parse_terms(text: str) -> List[QueryTerm]:
    """Parse just the polynomial part (no QAB allowed)."""
    terms, qab = _Parser(text).parse_query()
    if qab is not None:
        raise QueryParseError(text, text.rindex(":"), "unexpected QAB in a terms-only parse")
    return terms


def parse_query(text: str, qab: Optional[float] = None,
                name: Optional[str] = None) -> PolynomialQuery:
    """Parse ``"<polynomial> [: <QAB>]"`` into a :class:`PolynomialQuery`.

    The QAB may be given in the text or as the ``qab`` argument (the
    argument wins if both are present and disagree — an explicit override
    for experiment sweeps).
    """
    terms, parsed_qab = _Parser(text).parse_query()
    bound = qab if qab is not None else parsed_qab
    if bound is None:
        raise QueryParseError(text, len(text), "no QAB given (append ': <bound>' or pass qab=)")
    return PolynomialQuery(terms, bound, name)
