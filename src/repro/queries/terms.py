"""Weighted monomial terms of a polynomial query.

A :class:`QueryTerm` is ``w * x1^p1 * ... * xk^pk`` with non-zero real
weight ``w`` and positive integer exponents ``pi``.  Integer exponents are
what the paper's worst-case-deviation expansion (and hence the GP
constraints) requires; the example workloads (portfolio, arbitrage, spill
area) are all degree-2 products or squares.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple, Union

from repro.exceptions import InvalidQueryError
from repro.queries.items import validate_item_name

Number = Union[int, float]


def _normalise_exponents(exponents: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    cleaned: Dict[str, int] = {}
    for name, exp in exponents.items():
        validate_item_name(name)
        if not float(exp).is_integer():
            raise InvalidQueryError(
                f"query-term exponents must be integers, got {name}^{exp!r}; "
                "the deviation expansion (paper Eq. 1/2) needs the multinomial theorem"
            )
        exp_int = int(exp)
        if exp_int < 0:
            raise InvalidQueryError(f"query-term exponents must be >= 0, got {name}^{exp_int}")
        if exp_int > 0:
            cleaned[name] = exp_int
    if not cleaned:
        raise InvalidQueryError("a query term must reference at least one data item")
    return tuple(sorted(cleaned.items()))


class QueryTerm:
    """One term of a polynomial query; immutable and hashable."""

    __slots__ = ("_weight", "_exponents")

    def __init__(self, weight: Number, exponents: Mapping[str, int]):
        value = float(weight)
        if value == 0.0 or math.isnan(value) or math.isinf(value):
            raise InvalidQueryError(f"term weight must be finite and non-zero, got {weight!r}")
        self._weight = value
        self._exponents = _normalise_exponents(exponents)

    @classmethod
    def product(cls, weight: Number, *names: str) -> "QueryTerm":
        """``weight * n1 * n2 * ...`` — repeated names raise the exponent,
        so ``product(1, "x", "x")`` is ``x^2``."""
        exponents: Dict[str, int] = {}
        for name in names:
            exponents[name] = exponents.get(name, 0) + 1
        return cls(weight, exponents)

    # -- accessors -------------------------------------------------------------

    @property
    def weight(self) -> float:
        return self._weight

    @property
    def exponents(self) -> Dict[str, int]:
        return dict(self._exponents)

    @property
    def key(self) -> Tuple[Tuple[str, int], ...]:
        """Exponent signature (weight excluded) — used to combine like terms."""
        return self._exponents

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._exponents)

    @property
    def degree(self) -> int:
        return sum(exp for _, exp in self._exponents)

    @property
    def is_positive(self) -> bool:
        return self._weight > 0.0

    @property
    def is_linear(self) -> bool:
        return self.degree == 1

    def exponent_of(self, name: str) -> int:
        for var, exp in self._exponents:
            if var == name:
                return exp
        return 0

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, values: Mapping[str, Number]) -> float:
        result = self._weight
        for name, exp in self._exponents:
            try:
                result *= float(values[name]) ** exp
            except KeyError:
                raise KeyError(f"no value supplied for data item {name!r}") from None
        return result

    # -- algebra ---------------------------------------------------------------

    def __neg__(self) -> "QueryTerm":
        return QueryTerm(-self._weight, dict(self._exponents))

    def with_weight(self, weight: Number) -> "QueryTerm":
        return QueryTerm(weight, dict(self._exponents))

    def scaled(self, factor: Number) -> "QueryTerm":
        return QueryTerm(self._weight * float(factor), dict(self._exponents))

    def abs(self) -> "QueryTerm":
        return self if self.is_positive else -self

    # -- protocol ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryTerm):
            return NotImplemented
        return self._exponents == other._exponents and math.isclose(
            self._weight, other._weight, rel_tol=1e-12, abs_tol=0.0
        )

    def __hash__(self) -> int:
        return hash((round(self._weight, 12), self._exponents))

    def __repr__(self) -> str:
        parts = [name if exp == 1 else f"{name}^{exp}" for name, exp in self._exponents]
        return f"QueryTerm({self._weight:g} * " + "*".join(parts) + ")"
