"""Shared-structure query-bank index (the 10^5-10^6-query tier).

The 80-20 workload means most of a large query bank shares *monomial
structure* over a small hot-item set: thousands of ``w1*x*y + w2*u*v``
queries differ only in their weights and QABs.  The flat
:class:`~repro.queries.compiled.CompiledQueryBank` still pays one gather
row per term per query, so its per-refresh cost grows with bank size.
This module dedupes the bank by structure instead:

* :func:`template_key` canonicalizes a query's monomial structure —
  the sorted ``(item, exponent)`` signature of every term, weights
  excluded (``PolynomialQuery`` already combines and sorts like terms,
  so the key is a pure function of the structure);
* each distinct key compiles to **one** :class:`_Template`: a single
  ``(terms, width)`` gather into the shared
  :class:`~repro.queries.compiled.PowerTable` plus a per-query
  coefficient matrix ``W`` stacked on top — one tiny gather+reduce
  yields the unweighted term products ``P`` and one BLAS matvec
  ``W @ P`` evaluates every member query at once;
* an item → template inverted index (plus member positions per
  template) means a refresh touches only the affected template rows.

Per-tick cost is kept *sublinear in bank size* by slack screening: a
member only needs re-evaluation when its value might have crossed its
QAB since the user last saw it.  ``|w·ΔP| <= ||w||_1 · ||ΔP||_inf``
(Hölder) bounds each member's possible movement by a per-template
scalar, so each template keeps its members' notification thresholds
``(QAB - |v_sync - last_user|) / ||w||_1`` in a sorted array: one
``searchsorted`` against ``||P_now - P_sync||_inf`` finds the (usually
tiny) set of members that must actually be evaluated.  Screening is
conservative — it may evaluate a member that did not move, never the
reverse — so the *notification decisions* match the flat path's exact
per-tick evaluation (up to float association of ``W @ P`` versus the
flat path's sequential sums; the shared path makes no bit-identity
claim, which is why ``--bank-index flat`` remains the golden-pinned
default).

:class:`TemplateWindowState` gives the coordinator the matching
per-template secondary-DAB window check: reference/width matrices over
(member, item) with incremental breach flags and per-member counts, so
a refresh runs one vectorized column compare per affected template
instead of one dict-driven check per affected query.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.queries.compiled import PowerTable
from repro.queries.polynomial import PolynomialQuery

#: Bank-index modes accepted by the ``--bank-index`` flag.
BANK_INDEX_MODES = ("flat", "shared")

#: One query's structure: the per-term sorted ``(item, exponent)``
#: signatures, in the query's canonical term order.
TemplateKey = Tuple[Tuple[Tuple[str, int], ...], ...]

#: Index-update latency samples kept (bounds memory on long services).
_MAX_LATENCY_SAMPLES = 100_000

#: Screening thresholds are shrunk by this factor so float rounding in
#: the slack arithmetic can only make screening *more* conservative
#: (evaluate a safe member), never skip a member that truly moved.
_SCREEN_SAFETY = 1.0 - 1e-9

#: A template resyncs (full member re-evaluation + threshold rebuild)
#: when a tick touches at least this fraction of its members.
_RESYNC_FRACTION = 0.5


def template_key(query: PolynomialQuery) -> TemplateKey:
    """The query's hashable monomial-structure key (weights excluded)."""
    return tuple(term.key for term in query.terms)


class _Template:
    """One distinct structure: a shared gather plus stacked coefficients.

    Member arrays are capacity-doubled; ``count`` rows are live.  The
    screening state (``sync_P``/``v_sync``/``thr``) is lazily built on
    first refresh and invalidated by membership changes.
    """

    __slots__ = ("tid", "key", "gather", "items", "names", "count",
                 "capacity", "positions", "weights", "norms", "version",
                 "sync_P", "v_sync", "thr", "thr_sorted", "thr_order",
                 "dirty")

    def __init__(self, tid: int, key: TemplateKey, table: PowerTable):
        self.tid = tid
        self.key = key
        width = max(len(sig) for sig in key)
        self.gather = np.zeros((len(key), width), dtype=np.intp)
        items = set()
        for i, sig in enumerate(key):
            for j, (name, exponent) in enumerate(sig):
                self.gather[i, j] = table.slot(name, exponent)
                items.add(name)
        self.items: Tuple[str, ...] = tuple(sorted(items))
        self.names: List[str] = []
        self.count = 0
        self.capacity = 4
        self.positions = np.zeros(self.capacity, dtype=np.intp)
        self.weights = np.zeros((self.capacity, len(key)))
        self.norms = np.zeros(self.capacity)
        #: Bumped on every membership change; consumers holding derived
        #: per-member state (the coordinator's window matrices) compare
        #: it to decide whether their row layout is stale.
        self.version = 0
        self.sync_P: Optional[np.ndarray] = None
        self.v_sync = np.zeros(self.capacity)
        self.thr = np.zeros(self.capacity)
        self.thr_sorted: Optional[np.ndarray] = None
        self.thr_order: Optional[np.ndarray] = None
        self.dirty = False

    def _grow(self) -> None:
        self.capacity *= 2
        for attr in ("positions", "weights", "norms", "v_sync", "thr"):
            old = getattr(self, attr)
            shape = (self.capacity,) + old.shape[1:]
            new = np.zeros(shape, dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, attr, new)

    def add_member(self, name: str, position: int,
                   weights: Sequence[float]) -> int:
        if self.count == self.capacity:
            self._grow()
        row = self.count
        self.names.append(name)
        self.positions[row] = position
        self.weights[row] = weights
        self.norms[row] = float(np.sum(np.abs(self.weights[row])))
        self.count += 1
        self.version += 1
        self.sync_P = None
        return row

    def remove_member(self, row: int) -> Optional[str]:
        """Swap-remove ``row``; returns the member name that moved into
        it (``None`` when the last row was removed)."""
        last = self.count - 1
        moved: Optional[str] = None
        if row != last:
            self.names[row] = self.names[last]
            self.positions[row] = self.positions[last]
            self.weights[row] = self.weights[last]
            self.norms[row] = self.norms[last]
            moved = self.names[row]
        self.names.pop()
        self.count = last
        self.version += 1
        self.sync_P = None
        return moved

    def products(self, pvec: np.ndarray) -> np.ndarray:
        """Unweighted term products ``P`` at the given power vector."""
        return np.multiply.reduce(pvec[self.gather], axis=1)

    @property
    def nbytes(self) -> int:
        total = self.gather.nbytes
        for attr in ("positions", "weights", "norms", "v_sync", "thr"):
            total += getattr(self, attr).nbytes
        return total


class SharedStructureBank:
    """Structure-deduplicating index over a query bank.

    Positions are caller-owned bank indices (the coordinator's
    ``queries`` order); the bank maps ``name -> (template, row)`` and
    keeps each template's member positions so evaluations scatter
    straight into caller arrays.  ``add_query``/``remove_query``/
    ``set_position`` are all O(affected template), never O(bank) — the
    property the live QUERY_SUB path and its bounded-work test rely on.
    """

    def __init__(self, table: PowerTable):
        self.table = table
        self._entries: List[_Template] = []
        self._by_key: Dict[TemplateKey, int] = {}
        self._members: Dict[str, Tuple[int, int]] = {}
        self._item_templates: Dict[str, List[int]] = {}
        # -- stats plane -------------------------------------------------
        self.appends = 0
        self.removals = 0
        self.structure_hits = 0
        self.screen_evaluated = 0
        self.screen_skipped = 0
        self.template_syncs = 0
        self._update_seconds: List[float] = []

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    # -- membership ------------------------------------------------------

    def add_query(self, query: PolynomialQuery, position: int) -> int:
        """Register ``query`` at caller position; returns its template id."""
        if query.name in self._members:
            raise ValueError(f"query {query.name!r} already indexed")
        started = _time.perf_counter()
        key = template_key(query)
        tid = self._by_key.get(key)
        if tid is None:
            tid = len(self._entries)
            entry = _Template(tid, key, self.table)
            self._entries.append(entry)
            self._by_key[key] = tid
            for item in entry.items:
                self._item_templates.setdefault(item, []).append(tid)
        else:
            self.structure_hits += 1
            entry = self._entries[tid]
        row = entry.add_member(query.name, position,
                               [term.weight for term in query.terms])
        self._members[query.name] = (tid, row)
        self.appends += 1
        if len(self._update_seconds) < _MAX_LATENCY_SAMPLES:
            self._update_seconds.append(_time.perf_counter() - started)
        return tid

    def remove_query(self, name: str) -> None:
        started = _time.perf_counter()
        tid, row = self._members.pop(name)
        entry = self._entries[tid]
        moved = entry.remove_member(row)
        if moved is not None:
            self._members[moved] = (tid, row)
        self.removals += 1
        if len(self._update_seconds) < _MAX_LATENCY_SAMPLES:
            self._update_seconds.append(_time.perf_counter() - started)

    def set_position(self, name: str, position: int) -> None:
        """The caller moved ``name`` to a new bank position (swap-remove)."""
        tid, row = self._members[name]
        self._entries[tid].positions[row] = position

    # -- structure lookups ----------------------------------------------

    def template_of(self, name: str) -> int:
        return self._members[name][0]

    def member_row(self, name: str) -> int:
        return self._members[name][1]

    def templates_of_item(self, item: str) -> Sequence[int]:
        return self._item_templates.get(item, ())

    def template_items(self, tid: int) -> Tuple[str, ...]:
        return self._entries[tid].items

    def template_names(self, tid: int) -> Sequence[str]:
        return self._entries[tid].names

    def template_positions(self, tid: int) -> np.ndarray:
        entry = self._entries[tid]
        return entry.positions[: entry.count]

    def template_version(self, tid: int) -> int:
        return self._entries[tid].version

    # -- evaluation ------------------------------------------------------

    def values_all(self, pvec: np.ndarray, size: int) -> np.ndarray:
        """Every member's exact value, scattered by caller position."""
        out = np.zeros(size)
        for entry in self._entries:
            m = entry.count
            if not m:
                continue
            P = entry.products(pvec)
            out[entry.positions[:m]] = entry.weights[:m] @ P
        return out

    def value_of(self, pvec: np.ndarray, name: str) -> float:
        tid, row = self._members[name]
        entry = self._entries[tid]
        return float(entry.weights[row] @ entry.products(pvec))

    def invalidate(self) -> None:
        """Drop all screening sync state (cache restored out of band)."""
        for entry in self._entries:
            entry.sync_P = None

    def refresh_movers(
        self, item: str, pvec: np.ndarray,
        last_user: np.ndarray, qab: np.ndarray,
    ) -> Tuple[List[int], List[float]]:
        """Members of ``item``'s templates whose value moved beyond the
        QAB since the user last saw it — ``(positions, values)``.

        Contract: the caller notifies each returned member and writes
        the returned value back into ``last_user`` at its position (the
        updated thresholds already assume it).  Members screened out by
        the slack bound are *guaranteed* non-movers.
        """
        positions: List[int] = []
        values: List[float] = []
        for tid in self._item_templates.get(item, ()):
            entry = self._entries[tid]
            m = entry.count
            if not m:
                continue
            P = entry.products(pvec)
            if entry.sync_P is None:
                self._sync(entry, P, last_user, qab, positions, values)
                continue
            delta = float(np.max(np.abs(P - entry.sync_P)))
            if entry.dirty:
                order = np.argsort(entry.thr[:m], kind="stable")
                entry.thr_order = order
                entry.thr_sorted = entry.thr[:m][order]
                entry.dirty = False
            k = int(np.searchsorted(entry.thr_sorted, delta, side="right"))
            if k >= max(8, int(m * _RESYNC_FRACTION)):
                self._sync(entry, P, last_user, qab, positions, values)
                continue
            self.screen_skipped += m - k
            if not k:
                continue
            rows = entry.thr_order[:k]
            self.screen_evaluated += k
            v = entry.weights[rows] @ P
            pos = entry.positions[rows]
            moved = np.abs(v - last_user[pos]) > qab[pos]
            if moved.any():
                for j in np.nonzero(moved)[0].tolist():
                    row = int(rows[j])
                    value = float(v[j])
                    position = int(pos[j])
                    slack = qab[position] - abs(entry.v_sync[row] - value)
                    entry.thr[row] = (max(slack, 0.0) * _SCREEN_SAFETY
                                      / entry.norms[row])
                    positions.append(position)
                    values.append(value)
                entry.dirty = True
        return positions, values

    def _sync(self, entry: _Template, P: np.ndarray, last_user: np.ndarray,
              qab: np.ndarray, positions: List[int],
              values: List[float]) -> None:
        """Full member re-evaluation: re-anchor the screening state and
        append this tick's movers."""
        self.template_syncs += 1
        m = entry.count
        self.screen_evaluated += m
        v = entry.weights[:m] @ P
        pos = entry.positions[:m]
        previous = last_user[pos]
        moved = np.abs(v - previous) > qab[pos]
        entry.sync_P = P
        entry.v_sync[:m] = v
        slack = qab[pos] - np.abs(v - np.where(moved, v, previous))
        entry.thr[:m] = (np.maximum(slack, 0.0) * _SCREEN_SAFETY
                         / entry.norms[:m])
        order = np.argsort(entry.thr[:m], kind="stable")
        entry.thr_order = order
        entry.thr_sorted = entry.thr[:m][order]
        entry.dirty = False
        for row in np.nonzero(moved)[0].tolist():
            positions.append(int(pos[row]))
            values.append(float(v[row]))

    # -- stats plane -----------------------------------------------------

    @property
    def nbytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries)

    def stats(self) -> Dict[str, object]:
        """The ``bank_index`` stats section (server_stats / CLI / bench)."""
        counts = [entry.count for entry in self._entries if entry.count]
        total = sum(counts)
        distinct = len(counts)
        out: Dict[str, object] = {
            "mode": "shared",
            "queries": total,
            "distinct_structures": distinct,
            "dedup_ratio": round(total / distinct, 4) if distinct else 0.0,
            "min_template_queries": min(counts, default=0),
            "max_template_queries": max(counts, default=0),
            "mean_template_queries": (round(total / distinct, 2)
                                      if distinct else 0.0),
            "appends": self.appends,
            "removals": self.removals,
            "structure_hits": self.structure_hits,
            "screen_evaluated": self.screen_evaluated,
            "screen_skipped": self.screen_skipped,
            "template_syncs": self.template_syncs,
            "nbytes": int(self.nbytes),
        }
        if self._update_seconds:
            arr = np.asarray(self._update_seconds) * 1e6
            out["update_latency_us"] = {
                "samples": int(arr.size),
                "p50": round(float(np.percentile(arr, 50)), 3),
                "p95": round(float(np.percentile(arr, 95)), 3),
                "p99": round(float(np.percentile(arr, 99)), 3),
            }
        return out


class TemplateWindowState:
    """Per-template secondary-DAB window state (the coordinator's
    shared-mode breach check).

    One ``(members, items)`` reference/width matrix pair per template:
    a refresh of one item is a single vectorized column compare, breach
    transitions maintain per-member counts incrementally, and a member
    recomputation rewrites just its row.  Rows whose plans cannot be
    vectorized (no plan yet, single-DAB plans, missing references) are
    flagged ``fallback`` and stay on the coordinator's scalar predicate
    — bit-identical edge-case handling with the flat path.
    """

    __slots__ = ("items", "item_pos", "positions", "refs", "wids",
                 "flags", "counts", "fallback", "version")

    def __init__(self, items: Sequence[str], positions: np.ndarray,
                 version: int):
        k = len(items)
        m = len(positions)
        self.items = tuple(items)
        self.item_pos = {name: j for j, name in enumerate(self.items)}
        self.positions = np.array(positions, dtype=np.intp)
        self.refs = np.zeros((m, k))
        self.wids = np.full((m, k), np.inf)
        self.flags = np.zeros((m, k), dtype=bool)
        self.counts = np.zeros(m, dtype=np.intp)
        self.fallback = np.zeros(m, dtype=bool)
        self.version = version

    def set_row(self, row: int, refs: Mapping[str, float],
                wids: Mapping[str, float],
                values: Mapping[str, float]) -> None:
        """Adopt a (vectorizable) plan for one member: items absent from
        ``refs`` are unconstrained (never breach)."""
        self.fallback[row] = False
        count = 0
        for j, item in enumerate(self.items):
            reference = refs.get(item)
            if reference is None:
                self.refs[row, j] = 0.0
                self.wids[row, j] = np.inf
                self.flags[row, j] = False
            else:
                wide = wids[item]
                breached = abs(values[item] - reference) > wide
                self.refs[row, j] = reference
                self.wids[row, j] = wide
                self.flags[row, j] = breached
                count += breached
        self.counts[row] = count

    def set_fallback(self, row: int) -> None:
        self.fallback[row] = True
        self.flags[row] = False
        self.counts[row] = 0

    def update_item(self, item: str, value: float) -> np.ndarray:
        """One refresh: flip breach flags for ``item``'s column and
        return the member rows now needing recomputation (breached on
        *any* item, exactly the flat path's per-query count check)."""
        j = self.item_pos[item]
        col = np.abs(value - self.refs[:, j]) > self.wids[:, j]
        changed = col != self.flags[:, j]
        if changed.any():
            self.counts[changed] += np.where(col[changed], 1, -1)
            self.flags[:, j] = col
        return np.nonzero((self.counts > 0) & ~self.fallback)[0]

    def fallback_rows(self) -> np.ndarray:
        return np.nonzero(self.fallback)[0]
