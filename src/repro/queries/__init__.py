"""Polynomial-query algebra.

This subpackage models the paper's query class (Section I-A):

* :class:`~repro.queries.items.DataItem` / ``ItemRegistry`` — the dynamic
  data items served by sources,
* :class:`~repro.queries.terms.QueryTerm` — one weighted monomial term
  ``w * x1^p1 * ... * xk^pk``,
* :class:`~repro.queries.polynomial.PolynomialQuery` — a polynomial with a
  query accuracy bound (QAB), including the ``P = P1 - P2`` split used by the
  general-PQ heuristics,
* :func:`~repro.queries.parser.parse_query` — a small text format
  (``"3 x*y - 2 u*v : 5"``),
* :mod:`~repro.queries.deviation` — the worst-case-deviation expansion that
  turns QAB conditions into GP posynomial constraints (Equations 1 and 2 of
  the paper, generalised to arbitrary positive integer exponents).
"""

from repro.queries.bank_index import (
    BANK_INDEX_MODES,
    SharedStructureBank,
    TemplateWindowState,
    template_key,
)
from repro.queries.items import DataItem, ItemRegistry
from repro.queries.terms import QueryTerm
from repro.queries.polynomial import PolynomialQuery
from repro.queries.parser import parse_query
from repro.queries.deviation import (
    deviation_posynomial,
    dual_dab_condition,
    max_query_deviation,
    max_term_deviation,
    primary_variable,
    secondary_variable,
)

__all__ = [
    "BANK_INDEX_MODES",
    "SharedStructureBank",
    "TemplateWindowState",
    "template_key",
    "DataItem",
    "ItemRegistry",
    "QueryTerm",
    "PolynomialQuery",
    "parse_query",
    "deviation_posynomial",
    "dual_dab_condition",
    "max_query_deviation",
    "max_term_deviation",
    "primary_variable",
    "secondary_variable",
]
