"""Polynomial queries with accuracy bounds.

A :class:`PolynomialQuery` is the paper's ``P : B`` — a polynomial over data
items together with a query accuracy bound (QAB).  The class also provides
the structural operations the filter algorithms need:

* PPQ test (all coefficients positive),
* the ``P = P1 - P2`` split behind the Half-and-Half and Different-Sum
  heuristics (Section III-B.1),
* the *positive mirror* ``P1 + P2`` used by Different Sum,
* the independence test between ``P1`` and ``P2`` (shared data items).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import InvalidQueryError
from repro.queries.terms import Number, QueryTerm

_name_counter = itertools.count()


def _combine_like_terms(terms: Iterable[QueryTerm]) -> Tuple[QueryTerm, ...]:
    combined: Dict[Tuple[Tuple[str, int], ...], float] = {}
    for term in terms:
        if not isinstance(term, QueryTerm):
            raise TypeError(f"query terms must be QueryTerm instances, got {term!r}")
        combined[term.key] = combined.get(term.key, 0.0) + term.weight
    kept = [
        QueryTerm(weight, dict(key))
        for key, weight in sorted(combined.items())
        if weight != 0.0
    ]
    if not kept:
        raise InvalidQueryError("all terms cancelled; the query is identically zero")
    return tuple(kept)


class PolynomialQuery:
    """``sum_i w_i * prod_j x_j^{p_ij}  :  B`` — a continuous query.

    Parameters
    ----------
    terms:
        The weighted monomial terms.  Like terms are combined; exact
        cancellations are rejected.
    qab:
        The query accuracy bound ``B > 0`` (maximum tolerable imprecision in
        the query value).
    name:
        Optional identifier; auto-generated when omitted.
    """

    __slots__ = ("_terms", "_qab", "_name")

    def __init__(self, terms: Iterable[QueryTerm], qab: Number, name: Optional[str] = None):
        bound = float(qab)
        if not (bound > 0.0) or math.isinf(bound):
            raise InvalidQueryError(f"the QAB must be a positive finite number, got {qab!r}")
        self._terms = _combine_like_terms(terms)
        self._qab = bound
        self._name = name if name is not None else f"q{next(_name_counter)}"

    # -- constructors ------------------------------------------------------------

    @classmethod
    def single_term(cls, weight: Number, exponents: Mapping[str, int], qab: Number,
                    name: Optional[str] = None) -> "PolynomialQuery":
        """A one-term query ``weight * prod x^p : qab``."""
        return cls([QueryTerm(weight, exponents)], qab, name)

    @classmethod
    def product(cls, qab: Number, *names: str, weight: Number = 1.0,
                name: Optional[str] = None) -> "PolynomialQuery":
        """The running example of the paper: ``x*y : B``."""
        return cls([QueryTerm.product(weight, *names)], qab, name)

    # -- accessors ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def terms(self) -> Tuple[QueryTerm, ...]:
        return self._terms

    @property
    def qab(self) -> float:
        return self._qab

    @property
    def variables(self) -> Tuple[str, ...]:
        names = set()
        for term in self._terms:
            names.update(term.variables)
        return tuple(sorted(names))

    @property
    def degree(self) -> int:
        return max(term.degree for term in self._terms)

    @property
    def is_positive_coefficient(self) -> bool:
        """True when this is a PPQ (all weights positive)."""
        return all(term.is_positive for term in self._terms)

    @property
    def is_linear(self) -> bool:
        """True for linear aggregate queries (degree 1)."""
        return self.degree == 1

    @property
    def is_nonlinear(self) -> bool:
        return self.degree > 1

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, values: Mapping[str, Number]) -> float:
        """The query value at the given item values."""
        return sum(term.evaluate(values) for term in self._terms)

    def within_bound(self, reference: float, observed: float) -> bool:
        """``|observed - reference| <= B`` — the QAB predicate."""
        return abs(observed - reference) <= self._qab

    # -- structure for the heuristics ---------------------------------------------

    def split(self) -> Tuple[Tuple[QueryTerm, ...], Tuple[QueryTerm, ...]]:
        """The paper's key observation: ``P = P1 - P2``.

        Returns ``(P1, P2)`` where both are tuples of positive-weight terms:
        ``P1`` collects the positive-coefficient terms of ``P`` and ``P2``
        the negated negative-coefficient terms.  Either may be empty.
        """
        p1 = tuple(t for t in self._terms if t.is_positive)
        p2 = tuple(-t for t in self._terms if not t.is_positive)
        return p1, p2

    def positive_mirror(self, qab: Optional[Number] = None,
                        name: Optional[str] = None) -> "PolynomialQuery":
        """``P1 + P2 : B`` — the PPQ that Different Sum solves instead of
        ``P1 - P2 : B`` (Section III-B.2, Heuristic 2)."""
        p1, p2 = self.split()
        return PolynomialQuery(
            list(p1) + list(p2),
            self._qab if qab is None else qab,
            name or f"{self._name}__mirror",
        )

    def sub_query(self, terms: Sequence[QueryTerm], qab: Number,
                  name: Optional[str] = None) -> "PolynomialQuery":
        """Build a query over a subset of (positive) terms — used by
        Half-and-Half for ``P1 : B/2`` and ``P2 : B/2``."""
        return PolynomialQuery(terms, qab, name)

    def halves_are_independent(self) -> bool:
        """True when ``P1`` and ``P2`` share no data item — the condition
        under which Different Sum is provably near-optimal (Claim 2)."""
        p1, p2 = self.split()
        vars1 = set().union(*(t.variables for t in p1)) if p1 else set()
        vars2 = set().union(*(t.variables for t in p2)) if p2 else set()
        return not (vars1 & vars2)

    def with_qab(self, qab: Number, name: Optional[str] = None) -> "PolynomialQuery":
        """The same polynomial under a different accuracy bound."""
        return PolynomialQuery(self._terms, qab, name or self._name)

    # -- protocol ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolynomialQuery):
            return NotImplemented
        return self._terms == other._terms and math.isclose(
            self._qab, other._qab, rel_tol=1e-12, abs_tol=0.0
        )

    def __hash__(self) -> int:
        return hash((self._terms, round(self._qab, 12)))

    def __repr__(self) -> str:
        body = " + ".join(
            f"{t.weight:g}*" + "*".join(
                n if e == 1 else f"{n}^{e}" for n, e in t.key
            )
            for t in self._terms
        ).replace("+ -", "- ")
        return f"PolynomialQuery({self._name}: {body} : {self._qab:g})"
