"""Precompiled array evaluators for polynomial queries and deviations.

The simulator's two hottest loops — fidelity sampling and the coordinator's
per-refresh query checks — both evaluate :class:`PolynomialQuery` objects
term by term, dict lookup by dict lookup.  This module compiles a query
once into gather-index/weight arrays so each evaluation is one fancy-index
gather plus one ``multiply.reduce`` over a shared *power table*, and
compiles the worst-case deviation expansion of
:func:`repro.queries.deviation.deviation_posynomial` into a coefficient
program so GP recomputations refresh log-coefficients instead of rebuilding
posynomials.

Bit-exactness contract
----------------------
Every compiled evaluator here is **bitwise identical** to its scalar
counterpart, which is what lets the vectorized simulation paths reproduce
the golden metrics exactly.  Three empirical facts shape the design:

* ``numpy`` *array* ``**`` uses a SIMD pow path that differs from libm in
  the last ulp for exponents >= 2, while Python's scalar ``**`` (and
  ``np.float64 ** np.float64``) is exactly libm ``pow``.  Therefore every
  power is computed with Python-level ``**`` — either once into a power
  slab/vector, or incrementally when a cached value changes — and numpy is
  used only for gather, ``multiply.reduce`` and comparisons, which are
  IEEE-exact.
* ``np.multiply.reduce(..., axis=1)`` multiplies strictly left-to-right,
  so a row ``[w, p1, p2, ...]`` reproduces the scalar chain
  ``((w * p1) * p2) ...``; padding with exact ``1.0`` factors is a bitwise
  no-op.
* ``np.sum`` uses pairwise summation which diverges from the sequential
  ``sum()`` of the scalar path from 8 terms on; final sums are therefore
  sequential Python loops.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.gp.monomial import _normalise_exponents
from repro.queries.deviation import (
    _require_positive_value,
    primary_variable,
    secondary_variable,
)
from repro.queries.polynomial import PolynomialQuery
from repro.queries.terms import QueryTerm

_PRIMARY_PREFIX = "b__"


class PowerTable:
    """Registry of ``(item, exponent)`` power slots shared by evaluators.

    Slot 0 is a sentinel that always holds exactly ``1.0``; gather matrices
    pad with it, making ragged term widths a bitwise no-op.  Real slots
    start at index 1 so the sentinel survives later registrations.
    """

    __slots__ = ("_index", "pairs", "_by_item")

    def __init__(self) -> None:
        self._index: Dict[Tuple[str, int], int] = {}
        #: Registered ``(item, exponent)`` pairs; slot ``i`` is ``pairs[i-1]``.
        self.pairs: List[Tuple[str, int]] = []
        self._by_item: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        return len(self.pairs) + 1

    def slot(self, name: str, exponent: int) -> int:
        """Slot index of ``name ** exponent``, registering it if new."""
        key = (name, exponent)
        index = self._index.get(key)
        if index is None:
            index = len(self.pairs) + 1
            self._index[key] = index
            self.pairs.append(key)
            self._by_item.setdefault(name, []).append(index)
        return index

    def slots_of(self, name: str) -> Sequence[int]:
        """Slots that depend on ``name`` (for incremental updates)."""
        return self._by_item.get(name, ())

    def vector(self, values: Mapping[str, float]) -> np.ndarray:
        """The full power vector at the given item values."""
        vec = np.empty(len(self.pairs) + 1)
        vec[0] = 1.0
        for i, (name, exponent) in enumerate(self.pairs):
            vec[i + 1] = float(values[name]) ** exponent
        return vec

    def update(self, vector: np.ndarray, name: str, value: float) -> None:
        """Refresh the slots of ``name`` after its cached value changed."""
        for index in self._by_item.get(name, ()):
            vector[index] = value ** self.pairs[index - 1][1]

    def slab(self, traces: "object") -> np.ndarray:
        """``(ticks, slots)`` power slab over a whole
        :class:`~repro.dynamics.traces.TraceSet` — row ``t`` is
        :meth:`vector` at tick ``t``, precomputed once with Python pow."""
        length = traces.duration + 1
        slab = np.empty((length, len(self.pairs) + 1))
        slab[:, 0] = 1.0
        for i, (name, exponent) in enumerate(self.pairs):
            column = traces[name].values.tolist()
            slab[:, i + 1] = [value ** exponent for value in column]
        return slab


class CompiledPolynomial:
    """A query lowered to gather indices + a weight column.

    ``evaluate_vector(pvec)`` equals ``query.evaluate(values)`` bitwise when
    ``pvec`` holds the Python-pow powers of the same values.
    """

    __slots__ = ("query", "table", "_gather", "_factors")

    def __init__(self, query: PolynomialQuery, table: Optional[PowerTable] = None):
        self.query = query
        self.table = table if table is not None else PowerTable()
        terms = query.terms
        width = max(len(term.key) for term in terms)
        self._gather = np.zeros((len(terms), width), dtype=np.intp)
        self._factors = np.ones((len(terms), width + 1))
        for i, term in enumerate(terms):
            self._factors[i, 0] = term.weight
            for j, (name, exponent) in enumerate(term.key):
                self._gather[i, j] = self.table.slot(name, exponent)

    def evaluate_vector(self, pvec: np.ndarray) -> float:
        """Query value from a power vector of this object's table."""
        self._factors[:, 1:] = pvec[self._gather]
        products = np.multiply.reduce(self._factors, axis=1)
        total = 0.0
        for value in products.tolist():
            total += value
        return total

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Dict-based evaluation (test/reference path)."""
        return self.evaluate_vector(self.table.vector(values))

    def evaluate_slab(self, slab: np.ndarray) -> np.ndarray:
        """Query value at every row of a power slab at once.

        Row ``t`` equals ``evaluate_vector(slab[t])`` bitwise:
        ``multiply.reduce`` along the last axis multiplies strictly
        left-to-right per row, and the column-wise accumulation below adds
        the per-term products in the same ``((0.0 + p0) + p1) ...``
        sequence as the scalar sum.
        """
        factors = np.ones((slab.shape[0],) + self._factors.shape)
        factors[:, :, 0] = self._factors[:, 0]
        factors[:, :, 1:] = slab[:, self._gather]
        products = np.multiply.reduce(factors, axis=2)
        totals = np.zeros(slab.shape[0])
        for j in range(products.shape[1]):
            totals += products[:, j]
        return totals


class CompiledQueryBank:
    """Many compiled queries stacked into one gather/reduce evaluation.

    The coordinator touches several queries per refresh (and every query
    per fidelity sample); evaluating them one ``evaluate_vector`` at a time
    pays numpy's per-call overhead dozens of times per event.  The bank
    concatenates all queries' term rows — padded to a common width with the
    sentinel slot, a bitwise no-op — so one gather plus one
    ``multiply.reduce`` yields every term product; per-query values are
    then sequential Python sums over each query's row slice, reproducing
    ``query.evaluate`` bitwise (same chain of IEEE adds from ``0.0``).
    """

    __slots__ = ("table", "_gather", "_factors", "_slices",
                 "_scatter_rows", "_scatter_cols", "_matrix")

    def __init__(self, compiled: Sequence[CompiledPolynomial]):
        if not compiled:
            raise ValueError("a query bank needs at least one compiled query")
        table = compiled[0].table
        for one in compiled:
            if one.table is not table:
                raise ValueError("bank queries must share one power table")
        self.table = table
        width = max(one._gather.shape[1] for one in compiled)
        rows = sum(one._gather.shape[0] for one in compiled)
        self._gather = np.zeros((rows, width), dtype=np.intp)
        self._factors = np.ones((rows, width + 1))
        self._slices: List[Tuple[int, int]] = []
        start = 0
        for one in compiled:
            n, w = one._gather.shape
            self._gather[start:start + n, :w] = one._gather
            self._factors[start:start + n, 0] = one._factors[:, 0]
            self._slices.append((start, start + n))
            start += n
        # Scatter map for values_vector(): term row -> (query, position).
        # Padding cells of the matrix stay 0.0 forever — every non-pad cell
        # is overwritten on each scatter, so the buffer can be reused.
        depth = max(stop - begin for begin, stop in self._slices)
        self._scatter_rows = np.zeros(rows, dtype=np.intp)
        self._scatter_cols = np.zeros(rows, dtype=np.intp)
        for q, (begin, stop) in enumerate(self._slices):
            self._scatter_rows[begin:stop] = q
            self._scatter_cols[begin:stop] = np.arange(stop - begin)
        self._matrix = np.zeros((len(self._slices), depth))

    def products(self, pvec: np.ndarray) -> List[float]:
        """All queries' term products at once (input to :meth:`value_of`)."""
        self._factors[:, 1:] = pvec[self._gather]
        return np.multiply.reduce(self._factors, axis=1).tolist()

    def value_of(self, index: int, products: List[float]) -> float:
        """Query ``index``'s value from a :meth:`products` result."""
        start, stop = self._slices[index]
        total = 0.0
        for j in range(start, stop):
            total += products[j]
        return total

    def values(self, pvec: np.ndarray) -> List[float]:
        """Every query's value at the given power vector."""
        products = self.products(pvec)
        return [self.value_of(i, products) for i in range(len(self._slices))]

    def values_vector(self, pvec: np.ndarray) -> np.ndarray:
        """Every query's value as one array, bitwise equal to :meth:`values`.

        Term products are scattered into a (query, term-position) matrix and
        the columns accumulated left to right, so query ``q``'s total runs
        the same ``((0.0 + p0) + p1) ...`` chain as :meth:`value_of`,
        followed by trailing ``+ 0.0`` adds over the padding cells.  Those
        are bitwise no-ops: a running IEEE sum that starts at ``+0.0`` can
        never become ``-0.0`` (``x + y`` is ``-0.0`` only when both addends
        are), so ``total + 0.0`` reproduces ``total`` exactly.
        """
        self._factors[:, 1:] = pvec[self._gather]
        products = np.multiply.reduce(self._factors, axis=1)
        matrix = self._matrix
        matrix[self._scatter_rows, self._scatter_cols] = products
        totals = np.zeros(matrix.shape[0])
        for j in range(matrix.shape[1]):
            totals += matrix[:, j]
        return totals


# ---------------------------------------------------------------------------
# Compiled deviation expansion
# ---------------------------------------------------------------------------
#
# The coefficient of each monomial of ``deviation_posynomial`` is an exact
# arithmetic program over the current item values: products of binomial/
# multinomial integers and Python pows folded left-to-right, with like-term
# sums folded in collection order.  ``CompiledDeviation`` runs the scalar
# expansion once *symbolically* — replicating the exact monomial signature
# merging, canonical sorting and like-term combining of the Posynomial
# algebra — and records one expression per output row.  Re-evaluating the
# expressions at new values reproduces the scalar coefficients bitwise
# without rebuilding any Posynomial.

class _Coef:
    __slots__ = ()


class _Const(_Coef):
    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value


class _Mul(_Coef):
    """``left * (comb * value ** exponent)`` — one factor of the chain."""

    __slots__ = ("left", "comb", "name", "exponent")

    def __init__(self, left: _Coef, comb: int, name: str, exponent: int):
        self.left = left
        self.comb = comb
        self.name = name
        self.exponent = exponent


class _Sum(_Coef):
    """``0.0 + part_1 + part_2 + ...`` in collection order."""

    __slots__ = ("parts",)

    def __init__(self, parts: List[_Coef]):
        self.parts = parts


def _evaluate_coef(expr: _Coef, values: Mapping[str, float],
                   powers: Dict[Tuple[str, int], float]) -> float:
    if isinstance(expr, _Const):
        return expr.value
    if isinstance(expr, _Mul):
        key = (expr.name, expr.exponent)
        power = powers.get(key)
        if power is None:
            power = _require_positive_value(expr.name, values) ** expr.exponent
            powers[key] = power
        return _evaluate_coef(expr.left, values, powers) * (expr.comb * power)
    total = 0.0
    for part in expr.parts:
        total = total + _evaluate_coef(part, values, powers)
    return total


def _combine(parts: List[_Coef]) -> _Coef:
    # Posynomial construction folds like terms as ``0.0 + c1 + c2 + ...``;
    # for a single contribution ``0.0 + c == c`` bitwise, so skip the sum.
    return parts[0] if len(parts) == 1 else _Sum(parts)


def _merge_signatures(a: Tuple[Tuple[str, float], ...],
                      b: Tuple[Tuple[str, float], ...]) -> Tuple[Tuple[str, float], ...]:
    """Replicates ``Monomial.__mul__`` exponent merging + normalisation."""
    merged: Dict[str, float] = dict(a)
    for name, exponent in b:
        merged[name] = merged.get(name, 0.0) + exponent
    return _normalise_exponents(merged)


class CompiledDeviation:
    """Structure-compiled :func:`deviation_posynomial` for one term set.

    ``coefficients(values)`` returns, bitwise, the coefficient of each term
    of ``deviation_posynomial(terms, values, include_secondary)`` in its
    canonical (sorted-signature) order; the signatures themselves are
    value-independent and exposed for building static exponent matrices.
    """

    def __init__(self, terms: Iterable[QueryTerm], include_secondary: bool = False):
        self.include_secondary = include_secondary
        collected: List[Tuple[Tuple[Tuple[str, float], ...], _Coef]] = []
        for term in terms:
            product: List[Tuple[Tuple[Tuple[str, float], ...], _Coef]] = [
                ((), _Const(abs(float(term.weight))))
            ]
            for name, power in term.key:
                factor = self._factor_monomials(name, power, include_secondary)
                grouped: Dict[Tuple[Tuple[str, float], ...], List[_Coef]] = {}
                for sig_a, expr_a in product:
                    for sig_f, comb, vexp in factor:
                        sig = _merge_signatures(sig_a, sig_f)
                        grouped.setdefault(sig, []).append(
                            _Mul(expr_a, comb, name, vexp))
                product = [(sig, _combine(parts))
                           for sig, parts in sorted(grouped.items())]
            collected.extend(
                (sig, expr) for sig, expr in product
                if any(v.startswith(_PRIMARY_PREFIX) for v, _ in sig)
            )
        grouped_rows: Dict[Tuple[Tuple[str, float], ...], List[_Coef]] = {}
        for sig, expr in collected:
            grouped_rows.setdefault(sig, []).append(expr)
        self._rows: List[Tuple[Tuple[Tuple[str, float], ...], _Coef]] = [
            (sig, _combine(parts)) for sig, parts in sorted(grouped_rows.items())
        ]

    @staticmethod
    def _factor_monomials(name: str, power: int, include_secondary: bool):
        """Sorted-signature monomials of one ``_factor_expansion`` factor:
        ``(signature, comb, value_exponent)`` triples."""
        b_var = primary_variable(name)
        monomials = []
        if include_secondary:
            c_var = secondary_variable(name)
            for j in range(power + 1):
                for k in range(power - j + 1):
                    comb = math.comb(power, j) * math.comb(power - j, k)
                    exponents: Dict[str, int] = {}
                    if j:
                        exponents[c_var] = j
                    if k:
                        exponents[b_var] = k
                    monomials.append(
                        (_normalise_exponents(exponents), comb, power - j - k))
        else:
            for k in range(power + 1):
                exponents = {b_var: k} if k else {}
                monomials.append(
                    (_normalise_exponents(exponents), math.comb(power, k),
                     power - k))
        monomials.sort(key=lambda m: m[0])
        return monomials

    # -- structure ---------------------------------------------------------------

    @property
    def signatures(self) -> Tuple[Tuple[Tuple[str, float], ...], ...]:
        """Canonical exponent signature of each row, in output order."""
        return tuple(sig for sig, _ in self._rows)

    @property
    def variables(self) -> Tuple[str, ...]:
        names = set()
        for sig, _ in self._rows:
            names.update(name for name, _ in sig)
        return tuple(sorted(names))

    def exponent_matrix(self, order: Sequence[str]) -> np.ndarray:
        """Static ``A`` matrix over ``order`` (matches
        ``Posynomial.exponent_matrix`` for the scalar expansion)."""
        index = {name: j for j, name in enumerate(order)}
        A = np.zeros((len(self._rows), len(order)))
        for i, (sig, _) in enumerate(self._rows):
            for name, exponent in sig:
                A[i, index[name]] = exponent
        return A

    # -- evaluation --------------------------------------------------------------

    def coefficients(self, values: Mapping[str, float],
                     qab: Optional[float] = None) -> List[float]:
        """Row coefficients at ``values`` (divided by ``qab`` when given),
        bitwise equal to the scalar ``deviation_posynomial`` (and to
        ``dual_dab_condition``/``condition / qab`` with ``qab``)."""
        powers: Dict[Tuple[str, int], float] = {}
        out = []
        for _, expr in self._rows:
            coefficient = _evaluate_coef(expr, values, powers)
            if qab is not None:
                coefficient = coefficient / float(qab)
            out.append(coefficient)
        return out

    def log_coefficients(self, values: Mapping[str, float],
                         qab: Optional[float] = None) -> np.ndarray:
        return np.array([math.log(c) for c in self.coefficients(values, qab)])

    def substituted(self, fixed_names: Iterable[str]) -> "CompiledSubstitution":
        """Structure of ``substitute(posy, fixed)`` with the named variables
        folded into the coefficients (the widening pass fixes every ``b``)."""
        return CompiledSubstitution(self, fixed_names)


class CompiledSubstitution:
    """Compiled ``repro.gp.posynomial.substitute`` over a compiled deviation.

    Row structure (residual signatures, like-term regrouping) is
    value-independent; ``coefficients`` folds the fixed variables into the
    parent's coefficients exactly as the scalar ``substitute`` does.
    """

    def __init__(self, parent: CompiledDeviation, fixed_names: Iterable[str]):
        self.parent = parent
        fixed = set(fixed_names)
        grouped: Dict[Tuple[Tuple[str, float], ...],
                      List[Tuple[int, List[Tuple[str, float]]]]] = {}
        for index, sig in enumerate(parent.signatures):
            multipliers = [(name, exp) for name, exp in sig if name in fixed]
            residual = tuple((name, exp) for name, exp in sig
                             if name not in fixed)
            grouped.setdefault(residual, []).append((index, multipliers))
        self._rows = sorted(grouped.items())

    @property
    def signatures(self) -> Tuple[Tuple[Tuple[str, float], ...], ...]:
        return tuple(sig for sig, _ in self._rows)

    @property
    def variables(self) -> Tuple[str, ...]:
        names = set()
        for sig, _ in self._rows:
            names.update(name for name, _ in sig)
        return tuple(sorted(names))

    @property
    def is_constant(self) -> bool:
        """True when every fixed-variable fold leaves no free variable."""
        return all(not sig for sig, _ in self._rows)

    def exponent_matrix(self, order: Sequence[str]) -> np.ndarray:
        index = {name: j for j, name in enumerate(order)}
        A = np.zeros((len(self._rows), len(order)))
        for i, (sig, _) in enumerate(self._rows):
            for name, exponent in sig:
                A[i, index[name]] = exponent
        return A

    def coefficients(self, parent_coefficients: Sequence[float],
                     fixed: Mapping[str, float]) -> List[float]:
        """Residual-row coefficients, bitwise equal to
        ``substitute(parent_posynomial, fixed).terms`` coefficients."""
        out = []
        for _, contributions in self._rows:
            total = 0.0
            for index, multipliers in contributions:
                coefficient = parent_coefficients[index]
                for name, exponent in multipliers:
                    coefficient *= float(fixed[name]) ** exponent
                total = total + coefficient
            out.append(total)
        return out
