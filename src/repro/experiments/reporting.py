"""Plain-text reporting of experiment series.

The benches print the same rows the paper plots; these helpers keep the
formatting in one place and give tests something structured to assert on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import ExperimentSeries
from repro.simulation.metrics import SimulationMetrics


def series_to_rows(series: Sequence[ExperimentSeries], metric: str,
                   x_label: str = "x") -> List[Dict[str, float]]:
    """Pivot curves into rows ``{x_label: x, <label>: value, ...}``."""
    xs: List[float] = []
    for curve in series:
        for point in curve.points:
            if point.x not in xs:
                xs.append(point.x)
    xs.sort()
    rows = []
    for x in xs:
        row: Dict[str, float] = {x_label: x}
        for curve in series:
            for point in curve.points:
                if point.x == x:
                    row[curve.label] = getattr(point, metric)
        rows.append(row)
    return rows


def rows_to_csv(rows: Sequence[Dict[str, float]]) -> str:
    """Rows as CSV text (stable column order: first-seen across rows);
    missing cells stay empty."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.10g}"
        return str(value)

    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(fmt(row.get(c)) for c in columns))
    return "\n".join(lines)


def fault_counter_rows(metrics: SimulationMetrics,
                       label: Optional[str] = None) -> List[Dict[str, object]]:
    """One table row per fault-side counter (drops, retries, leases, ...).

    ``label`` prepends an identifying column, letting sweep benches stack
    the rows of several runs into one table via :func:`format_table`.
    """
    row: Dict[str, object] = {}
    if label is not None:
        row["run"] = label
    row.update(metrics.fault_counters())
    return [row]


def fault_sweep_rows(runs: Sequence[tuple],
                     metric_names: Sequence[str] = (
                         "fidelity_loss_percent", "refreshes", "recomputations",
                         "messages_dropped", "dab_retries", "lease_expiries", "refresh_gaps",
                         "staleness_exposure_seconds", "degraded_samples",
                         "uncertainty_violations", "solver_fallbacks",
                     )) -> List[Dict[str, object]]:
    """Rows for a fault sweep: ``runs`` is ``[(label, SimulationMetrics)]``."""
    rows: List[Dict[str, object]] = []
    for label, metrics in runs:
        row: Dict[str, object] = {"run": label}
        for name in metric_names:
            row[name] = getattr(metrics, name)
        rows.append(row)
    return rows


def format_table(rows: Sequence[Dict[str, float]], title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    if not rows:
        return title
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: len(c) for c in columns}

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    rendered = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    for cells in rendered:
        for column, cell in zip(columns, cells):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(widths[c]) for c in columns))
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for cells in rendered:
        lines.append(" | ".join(cell.ljust(widths[column])
                                for column, cell in zip(columns, cells)))
    return "\n".join(lines)
