"""Parallel sweep runner for batches of independent simulations.

Figure sweeps are embarrassingly parallel: every point is one
:func:`~repro.simulation.harness.run_simulation` call whose randomness is
derived *entirely* from its config (delay streams from
``SeedSequence(entropy=config.seed)``, fault streams from
``(fault_config.seed, crc32(link))``).  No state crosses run boundaries,
so fanning runs out over a :class:`~concurrent.futures.ProcessPoolExecutor`
is bit-identical to running them serially — pinned by
``tests/experiments/test_sweeps.py``.

Seed scheme for multi-seed sweeps: :func:`derive_seed` folds
``SeedSequence(entropy=base_seed, spawn_key=(index,))`` to one integer, so
run ``index`` of a sweep gets the same seed no matter how the sweep is
split across workers or sessions (see DESIGN.md §8).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.simulation.harness import (
    SimulationConfig,
    SimulationResult,
    run_simulation,
)


def derive_seed(base_seed: int, index: int) -> int:
    """The deterministic seed for run ``index`` of a sweep over ``base_seed``.

    Uses numpy's splittable :class:`~numpy.random.SeedSequence` rather than
    ``base_seed + index`` so that nearby base seeds cannot collide with
    nearby indices (seed 0 index 1 vs seed 1 index 0).
    """
    if index < 0:
        raise SimulationError(f"sweep index must be >= 0, got {index!r}")
    sequence = np.random.SeedSequence(entropy=base_seed, spawn_key=(index,))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def run_configs(configs: Sequence[SimulationConfig],
                jobs: Optional[int] = None) -> List[SimulationResult]:
    """Run every config and return results in input order.

    ``jobs=None``/``0``/``1`` runs serially in-process; ``jobs=N`` fans out
    over ``N`` worker processes.  Results are bit-identical either way —
    only ``wall_seconds`` (measured, not simulated) may differ.
    """
    configs = list(configs)
    if jobs is not None and jobs < 0:
        raise SimulationError(f"jobs must be >= 0, got {jobs!r}")
    if not configs:
        return []
    if jobs in (None, 0, 1) or len(configs) == 1:
        return [run_simulation(config) for config in configs]
    with ProcessPoolExecutor(max_workers=min(jobs, len(configs))) as pool:
        return list(pool.map(run_simulation, configs))


def run_seed_sweep(config: SimulationConfig, runs: int,
                   jobs: Optional[int] = None) -> List[SimulationResult]:
    """``runs`` replicas of ``config`` at seeds ``derive_seed(config.seed, i)``."""
    if runs < 1:
        raise SimulationError(f"runs must be >= 1, got {runs!r}")
    configs = [replace(config, seed=derive_seed(config.seed, index))
               for index in range(runs)]
    return run_configs(configs, jobs=jobs)
