"""Experiment runners reproducing the paper's figures and tables."""

from repro.experiments.figures import (
    ExperimentPoint,
    ExperimentSeries,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8ab,
    run_figure8c,
    run_sharfman_comparison,
    run_signomial_comparison,
    run_solver_timing,
)
from repro.experiments.sweeps import (
    derive_seed,
    run_configs,
    run_seed_sweep,
)
from repro.experiments.reporting import (
    fault_counter_rows,
    fault_sweep_rows,
    format_table,
    rows_to_csv,
    series_to_rows,
)

__all__ = [
    "ExperimentPoint",
    "ExperimentSeries",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8ab",
    "run_figure8c",
    "run_sharfman_comparison",
    "run_signomial_comparison",
    "run_solver_timing",
    "derive_seed",
    "run_configs",
    "run_seed_sweep",
    "fault_counter_rows",
    "fault_sweep_rows",
    "format_table",
    "rows_to_csv",
    "series_to_rows",
]
