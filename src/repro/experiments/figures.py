"""Runners for every figure/table of the paper's evaluation (Section V).

Each ``run_figureN`` sweeps the paper's x-axis at a configurable scale and
returns :class:`ExperimentSeries` objects whose points carry the paper's
four metrics.  The bench targets in ``benchmarks/`` call these and print
the series; EXPERIMENTS.md records the paper-vs-measured comparison.

Scale: the paper uses 100 items / 10 000 s traces / up to 10 000 queries.
Defaults here are laptop-sized; every runner accepts the full-scale
parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dynamics.estimation import UnitRateEstimator
from repro.filters.cost_model import CostModel
from repro.filters.dual_dab import DualDABPlanner
from repro.filters.multi_query import AAOPlanner
from repro.filters.optimal_refresh import OptimalRefreshPlanner
from repro.filters.baselines import SharfmanStyleBaseline
from repro.dynamics import estimate_rates
from repro.queries.polynomial import PolynomialQuery
from repro.simulation.dissemination import DisseminationConfig, run_dissemination
from repro.simulation.harness import AlgorithmName, SimulationConfig, run_simulation
from repro.workloads.scenarios import PaperScenario, scaled_scenario


@dataclass
class ExperimentPoint:
    """One (x, metrics) sample of a series."""

    x: float
    refreshes: int
    recomputations: int
    fidelity_loss_percent: float
    total_cost: float
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentSeries:
    """A labelled curve, e.g. ``Dual-DAB, mu=5``."""

    label: str
    points: List[ExperimentPoint] = field(default_factory=list)

    def metric(self, name: str) -> List[Tuple[float, float]]:
        return [(p.x, getattr(p, name)) for p in self.points]


def _point_config(scenario: PaperScenario, queries: Sequence[PolynomialQuery],
                  algorithm: AlgorithmName, mu: float, duration: int,
                  seed: int, **overrides) -> SimulationConfig:
    return SimulationConfig(
        queries=queries,
        traces=scenario.traces,
        algorithm=algorithm,
        recompute_cost=mu,
        duration=duration,
        source_count=scenario.source_count,
        seed=seed,
        fidelity_interval=overrides.pop("fidelity_interval", 5),
        **overrides,
    )


def _point_from_result(x: float, result) -> ExperimentPoint:
    m = result.metrics
    return ExperimentPoint(
        x=x,
        refreshes=m.refreshes,
        recomputations=m.recomputations,
        fidelity_loss_percent=m.fidelity_loss_percent,
        total_cost=m.total_cost,
        extra={"gp_solves": m.gp_solves, "wall_seconds": result.wall_seconds},
    )


def _run_point(scenario: PaperScenario, queries: Sequence[PolynomialQuery],
               algorithm: AlgorithmName, mu: float, duration: int,
               seed: int, **overrides) -> ExperimentPoint:
    config = _point_config(scenario, queries, algorithm, mu, duration, seed,
                           **overrides)
    return _point_from_result(len(queries), run_simulation(config))


def _run_plan(plan, jobs: Optional[int]) -> None:
    """Run a list of ``(series, x, config)`` entries — in parallel when
    ``jobs`` asks for it — and append the points in plan order.

    Every run's randomness is derived from its config alone, so the
    parallel fan-out is bit-identical to the serial loop (see
    ``repro.experiments.sweeps``).
    """
    from repro.experiments.sweeps import run_configs

    results = run_configs([config for _, _, config in plan], jobs=jobs)
    for (curve, x, _), result in zip(plan, results):
        curve.points.append(_point_from_result(x, result))


# ---------------------------------------------------------------------------
# Figure 5 — PPQs: Dual-DAB vs Optimal Refresh across mu and #queries
# ---------------------------------------------------------------------------

def run_figure5(
    query_counts: Sequence[int] = (10, 20, 40),
    mus: Sequence[float] = (1.0, 5.0, 10.0),
    item_count: int = 40,
    trace_length: int = 401,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[ExperimentSeries]:
    """Fig. 5(a/b/c): recomputations, refreshes and fidelity loss vs number
    of portfolio PPQs, for Optimal Refresh and Dual-DAB at several μ.

    (Paper scale: query_counts 200..1000, item_count 100,
    trace_length 10_001.)
    """
    scenario = scaled_scenario(max(query_counts), item_count=item_count,
                               trace_length=trace_length, seed=seed)
    duration = trace_length - 1
    series: List[ExperimentSeries] = [ExperimentSeries("Optimal Refresh")]
    plan = []
    for count in query_counts:
        queries = scenario.queries[:count]
        plan.append((series[0], count,
                     _point_config(scenario, queries,
                                   AlgorithmName.OPTIMAL_REFRESH,
                                   mu=1.0, duration=duration, seed=seed)))
    for mu in mus:
        curve = ExperimentSeries(f"Dual-DAB, mu={mu:g}")
        for count in query_counts:
            queries = scenario.queries[:count]
            plan.append((curve, count,
                         _point_config(scenario, queries,
                                       AlgorithmName.DUAL_DAB,
                                       mu=mu, duration=duration, seed=seed)))
        series.append(curve)
    _run_plan(plan, jobs)
    # Total cost for a series is evaluated at that series' own mu; for the
    # Optimal Refresh curve re-evaluate per mu for fair Fig-6(c)-style use.
    return series


# ---------------------------------------------------------------------------
# Figure 6 — effect of the data dynamics model (mono / random walk / λ=1)
# ---------------------------------------------------------------------------

def run_figure6(
    query_counts: Sequence[int] = (10, 20, 40),
    mus: Sequence[float] = (1.0, 5.0),
    item_count: int = 40,
    trace_length: int = 401,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[ExperimentSeries]:
    """Fig. 6(a/b/c): Dual-DAB under the monotonic vs random-walk ddm vs
    no rate information (λ=1), over the same GBM traces."""
    scenario = scaled_scenario(max(query_counts), item_count=item_count,
                               trace_length=trace_length, seed=seed)
    duration = trace_length - 1
    variants = []
    for mu in mus:
        variants.append((f"Mono, mu={mu:g}", dict(ddm="monotonic"), mu))
        variants.append((f"Random, mu={mu:g}", dict(ddm="random_walk"), mu))
    variants.append((f"L1, mu={mus[-1]:g}",
                     dict(ddm="monotonic", rate_estimator=UnitRateEstimator()),
                     mus[-1]))
    series = []
    plan = []
    for label, overrides, mu in variants:
        curve = ExperimentSeries(label)
        for count in query_counts:
            queries = scenario.queries[:count]
            plan.append((curve, count,
                         _point_config(scenario, queries, AlgorithmName.DUAL_DAB,
                                       mu=mu, duration=duration, seed=seed,
                                       **overrides)))
        series.append(curve)
    _run_plan(plan, jobs)
    return series


# ---------------------------------------------------------------------------
# Figure 7 — EQI vs AAO-T for a small query set, sweeping mu
# ---------------------------------------------------------------------------

def run_figure7(
    mus: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
    periods: Sequence[int] = (30, 120, 600),
    query_count: int = 10,
    item_count: int = 40,
    trace_length: int = 401,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[ExperimentSeries]:
    """Fig. 7(a/b/c): refreshes, recomputations and total cost vs μ for EQI
    and AAO-T at several recomputation periods T (paper: T=30..1500 over
    4000 s PlanetLab traces)."""
    scenario = scaled_scenario(query_count, item_count=item_count,
                               trace_length=trace_length, seed=seed)
    duration = trace_length - 1
    queries = scenario.queries
    series = [ExperimentSeries("EQI")]
    plan = []
    for mu in mus:
        plan.append((series[0], mu,
                     _point_config(scenario, queries, AlgorithmName.DUAL_DAB,
                                   mu=mu, duration=duration, seed=seed)))
    for period in periods:
        curve = ExperimentSeries(f"AAO-{period}")
        for mu in mus:
            plan.append((curve, mu,
                         _point_config(scenario, queries, AlgorithmName.AAO_T,
                                       mu=mu, duration=duration, seed=seed,
                                       aao_period=period)))
        series.append(curve)
    _run_plan(plan, jobs)
    return series


# ---------------------------------------------------------------------------
# Figure 8(a/b) — general PQs: Half-and-Half vs Different Sum
# ---------------------------------------------------------------------------

def run_figure8ab(
    query_counts: Sequence[int] = (5, 10, 20),
    mus: Sequence[float] = (1.0, 5.0),
    dependent: bool = False,
    item_count: int = 40,
    trace_length: int = 401,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[ExperimentSeries]:
    """Fig. 8(a) independent / 8(b) dependent arbitrage PQs: number of
    recomputations for HH vs DS across μ."""
    from repro.workloads.generator import WorkloadConfig

    workload = WorkloadConfig(shared_item_probability=0.8 if dependent else 0.0)
    scenario = scaled_scenario(max(query_counts), item_count=item_count,
                               trace_length=trace_length, seed=seed,
                               query_kind="arbitrage", workload=workload)
    duration = trace_length - 1
    series = []
    plan = []
    for algorithm, tag in ((AlgorithmName.HALF_AND_HALF, "HH"),
                           (AlgorithmName.DIFFERENT_SUM, "DS")):
        for mu in mus:
            curve = ExperimentSeries(f"{tag}, mu={mu:g}")
            for count in query_counts:
                queries = scenario.queries[:count]
                plan.append((curve, count,
                             _point_config(scenario, queries, algorithm,
                                           mu=mu, duration=duration, seed=seed)))
            series.append(curve)
    _run_plan(plan, jobs)
    return series


# ---------------------------------------------------------------------------
# Figure 8(c) — dissemination network, Dual-DAB vs WSDAB baseline
# ---------------------------------------------------------------------------

def run_figure8c(
    query_counts: Sequence[int] = (10, 40),
    mu: float = 5.0,
    coordinator_count: int = 10,
    source_count: int = 2,
    item_count: int = 40,
    trace_length: int = 401,
    seed: int = 0,
) -> List[ExperimentSeries]:
    """Fig. 8(c): recomputations on a 10-coordinator dissemination network
    for Dual-DAB vs the recompute-per-refresh WSDAB baseline (paper:
    604 735 recomputations for WSDAB at 10 000 queries)."""
    scenario = scaled_scenario(max(query_counts), item_count=item_count,
                               trace_length=trace_length, seed=seed)
    duration = trace_length - 1
    series = []
    for algorithm, label in ((AlgorithmName.DUAL_DAB, "Dual-DAB"),
                             (AlgorithmName.SHARFMAN_BASELINE, "WSDAB")):
        curve = ExperimentSeries(label)
        for count in query_counts:
            config = DisseminationConfig(
                queries=scenario.queries[:count], traces=scenario.traces,
                algorithm=algorithm, recompute_cost=mu, duration=duration,
                coordinator_count=coordinator_count, source_count=source_count,
                seed=seed,
            )
            result = run_dissemination(config)
            m = result.metrics
            curve.points.append(ExperimentPoint(
                x=count, refreshes=m.refreshes, recomputations=m.recomputations,
                fidelity_loss_percent=m.fidelity_loss_percent,
                total_cost=m.total_cost,
            ))
        series.append(curve)
    return series


# ---------------------------------------------------------------------------
# Section V tables: comparison with [5] and solver timings
# ---------------------------------------------------------------------------

def run_sharfman_comparison(
    scale: float = 1.0,
    seed: int = 0,
    rate_skews: Sequence[float] = (1.0, 4.0, 10.0),
) -> List[Dict[str, float]]:
    """The Section-V comparison with [5]: per-item sufficient conditions
    produce more stringent DABs (⇒ more refreshes) than Optimal Refresh's
    single necessary-and-sufficient condition; the gap widens with
    rate-of-change skew."""
    from repro.queries.polynomial import PolynomialQuery

    query = PolynomialQuery.product(50.0 * scale, "x", "y", name="comparison")
    values = {"x": 40.0, "y": 20.0}
    rows = []
    for skew in rate_skews:
        cost_model = CostModel(rates={"x": skew, "y": 1.0})
        optimal = OptimalRefreshPlanner(cost_model).plan(query, values)
        baseline = SharfmanStyleBaseline(cost_model).plan(query, values)
        rows.append({
            "rate_skew": skew,
            "optimal_bx": optimal.primary["x"],
            "optimal_by": optimal.primary["y"],
            "baseline_bx": baseline.primary["x"],
            "baseline_by": baseline.primary["y"],
            "optimal_refresh_rate": cost_model.estimated_refresh_rate(optimal.primary),
            "baseline_refresh_rate": cost_model.estimated_refresh_rate(baseline.primary),
        })
    return rows


def run_signomial_comparison(
    query_count: int = 8,
    item_count: int = 40,
    trace_length: int = 201,
    recompute_cost: float = 5.0,
    seed: int = 61,
) -> List[Dict[str, float]]:
    """Extension table: the exact-condition signomial planner vs the
    paper's two heuristics, per arbitrage query (estimated message-rate
    objective; see EXPERIMENTS.md 'Extension — signomial planner')."""
    from repro.filters.heuristics import HalfAndHalfPlanner
    from repro.filters.signomial import SignomialPlanner
    from repro.filters.heuristics import DifferentSumPlanner
    from repro.queries.signed import mixed_worst_deviation

    scenario = scaled_scenario(query_count, item_count=item_count,
                               trace_length=trace_length,
                               query_kind="arbitrage", seed=seed)
    values = scenario.initial_values
    model = CostModel(rates=estimate_rates(scenario.traces),
                      recompute_cost=recompute_cost)
    rows = []
    for query in scenario.queries:
        hh = HalfAndHalfPlanner(model).plan(query, values)
        ds = DifferentSumPlanner(model).plan(query, values)
        planner = SignomialPlanner(model)
        sp = planner.plan(query, values)
        deviation = mixed_worst_deviation(query.terms, values,
                                          sp.primary, sp.secondary)
        rows.append({
            "query": query.name,
            "HH_objective": hh.objective,
            "DS_objective": ds.objective,
            "SP_objective": sp.objective,
            "SP_vs_DS_saving_%": 100.0 * (1.0 - sp.objective / ds.objective),
            "SP_iterations": planner.last_trace.iterations,
            "SP_budget_used_%": 100.0 * deviation / query.qab,
        })
    return rows


def run_solver_timing(
    query_count: int = 10,
    item_count: int = 40,
    trace_length: int = 201,
    repetitions: int = 5,
    seed: int = 0,
) -> Dict[str, float]:
    """The paper's solver-cost table: per-PPQ Dual-DAB solve time (paper:
    40-70 ms) and the joint AAO solve for ``query_count`` PPQs (paper:
    600-750 ms for 10)."""
    scenario = scaled_scenario(query_count, item_count=item_count,
                               trace_length=trace_length, seed=seed)
    values = scenario.initial_values
    rates = estimate_rates(scenario.traces)
    cost_model = CostModel(rates=rates, recompute_cost=5.0)

    dual = DualDABPlanner(cost_model)
    query = scenario.queries[0]
    started = time.perf_counter()
    for _ in range(repetitions):
        dual.clear_warm_starts()
        dual.plan(query, values)
    dual_cold_ms = 1000.0 * (time.perf_counter() - started) / repetitions

    started = time.perf_counter()
    for _ in range(repetitions):
        dual.plan(query, values)
    dual_warm_ms = 1000.0 * (time.perf_counter() - started) / repetitions

    aao = AAOPlanner(cost_model)
    started = time.perf_counter()
    aao.plan_all(scenario.queries, values)
    aao_ms = 1000.0 * (time.perf_counter() - started)

    return {
        "dual_dab_cold_ms": dual_cold_ms,
        "dual_dab_warm_ms": dual_warm_ms,
        f"aao_{query_count}_queries_ms": aao_ms,
    }
